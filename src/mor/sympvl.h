// SyMPVL: symmetric Matrix-Padé Via Lanczos model-order reduction for
// coupled RC interconnect (paper Section 3; Freund & Feldmann, DATE-98).
//
// Starting from the MNA description of the linear subcircuit,
//     G v + C dv/dt = B i_x                                   (eq. 1)
// the algorithm factors G = F^T F (Cholesky), changes variables x = F v to
// obtain
//     x + A dx/dt = L i_x,  A = F^{-T} C F^{-1},  L = F^{-T} B (eq. 2)
// and projects onto the block Krylov subspace span{L, AL, A^2 L, ...},
// yielding the reduced system
//     v' + T dv'/dt = rho i_x                                  (eq. 3)
// whose port transfer function is a matrix-Padé approximant of the
// original's. Because A is symmetric positive semidefinite and the
// projection is orthogonal, T inherits symmetry and PSD-ness, so the
// reduced model is provably stable and passive.
//
// This implementation runs the block Lanczos sweep with full
// reorthogonalization and column deflation: post-pruning clusters are small
// (tens to hundreds of nodes), so robustness is worth the extra O(n q^2).
#pragma once

#include <cstddef>

#include "linalg/dense_matrix.h"
#include "netlist/rc_network.h"
#include "util/deadline.h"

namespace xtv {

/// The reduced-order model (T, rho) of eq. (3): q states, p ports.
struct ReducedModel {
  DenseMatrix t;    ///< q x q, symmetric positive semidefinite
  DenseMatrix rho;  ///< q x p

  std::size_t order() const { return t.rows(); }
  std::size_t port_count() const { return rho.cols(); }

  /// Port admittance-style transfer evaluated at real frequency-like
  /// argument s: H(s) = rho^T (I + s T)^{-1} rho (p x p). (Real s is all
  /// the moment/accuracy tests need; the time-domain engine never forms
  /// H.)
  DenseMatrix transfer(double s) const;

  /// k-th block moment rho^T T^k rho (p x p). Matches the original
  /// circuit's moments B^T (G^{-1} C)^k G^{-1} B for k < 2*floor(q/p) by
  /// the matrix-Padé property.
  DenseMatrix moment(unsigned k) const;

  /// Smallest eigenvalue of the symmetrized T; passivity/stability hold
  /// when this is >= -tol.
  double min_t_eigenvalue() const;

  /// True when T is PSD within tol (the provable-passivity property,
  /// paper ref. [4]).
  bool is_passive(double tol = 1e-9) const;
};

struct SympvlOptions {
  std::size_t max_order = 0;      ///< 0 = automatic: min(4 * ports, n)
  double deflation_tol = 1e-8;    ///< relative column-norm cutoff in the sweep
  /// Optional cooperative-cancel token, polled once per Krylov vector so a
  /// deadline or shed request cannot stall inside a long MOR sweep.
  const CancelToken* cancel = nullptr;
};

/// Runs SyMPVL on dense MNA matrices. `g` must be SPD (every node needs a
/// resistive path to ground — stamp port/gmin conductances first), `c`
/// symmetric PSD, `b` the node-by-port incidence. Throws on a non-SPD g.
ReducedModel sympvl_reduce(const DenseMatrix& g, const DenseMatrix& c,
                           const DenseMatrix& b, const SympvlOptions& options = {});

/// Convenience wrapper: reduces an RcNetwork (coupled caps included when
/// `couple`; grounded-coupling variant used for decoupled delay analysis).
ReducedModel sympvl_reduce(const RcNetwork& network, bool couple = true,
                           const SympvlOptions& options = {});

/// Exact k-th block moment of the *original* circuit,
/// B^T (G^{-1} C)^k G^{-1} B — the reference for Padé moment-matching
/// tests and order-selection heuristics.
DenseMatrix exact_moment(const DenseMatrix& g, const DenseMatrix& c,
                         const DenseMatrix& b, unsigned k);

}  // namespace xtv
