// A-posteriori accuracy certification of SyMPVL reduced models.
//
// The paper's whole flow rests on the reduced (T, rho) pair being a
// faithful matrix-Padé approximant of the cluster's port transfer
// function; the moment-matching property guarantees that only near s = 0
// and says nothing about a q chosen too small for a given cluster. This
// layer makes accuracy a machine-checked contract (DESIGN.md §10): after
// every reduction, the EXACT transfer function
//     H(s_k) = B^T (G + s_k C)^{-1} B
// is evaluated at a small set of sample frequencies via sparse LU solves
// on the shifted pencil (linalg/shifted_solver.h) and compared against the
// reduced
//     Ĥ(s_k) = rho^T (I + s_k T)^{-1} rho.
// The certificate also re-checks passivity numerically (nonnegative
// eigenvalues of the symmetrized T) and that the reduced port response is
// bounded (finite) at every sample. A failed certificate drives the
// verifier's UPWARD escalation ladder — re-reduce at raised Krylov order —
// the accuracy-side complement of the downward degradation ladder of §7.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"
#include "mor/sympvl.h"
#include "netlist/rc_network.h"
#include "util/deadline.h"

namespace xtv {

struct CertifyOptions {
  /// Number of sample frequencies; log-spaced over [s_min, s_max].
  std::size_t num_freqs = 5;
  /// Sample band (rad/s-like real shifts). Zeros derive the band from the
  /// transient the model will serve: callers pass 1/tstop .. 1/(4 dt) so
  /// the certificate probes exactly the frequencies the simulation
  /// resolves. The built-in fallback covers typical cluster dynamics.
  double s_min = 0.0;
  double s_max = 0.0;
  /// Passivity tolerance on the smallest eigenvalue of the symmetrized T.
  double passivity_tol = 1e-9;
  /// Polled once per sample frequency so certification respects the
  /// cluster's wall-clock budget. Not owned.
  const CancelToken* cancel = nullptr;
};

/// The certificate: a machine-checked accuracy statement about one reduced
/// model, relative to the exact (unreduced) cluster it came from.
struct Certificate {
  /// max over sample frequencies of
  ///   ||H(s_k) - Ĥ(s_k)||_F / max(||H(s_k)||_F, tiny).
  /// Infinity when the certificate could not be evaluated (singular shifted
  /// pencil, non-finite reduced response, injected probe fault).
  double max_rel_err = 0.0;
  /// The sample shifts actually probed.
  std::vector<double> freqs;
  /// Symmetrized T is PSD within passivity_tol AND every probed reduced
  /// response was finite.
  bool passivity_ok = false;
  /// Order q of the certified model.
  std::size_t order_used = 0;
  /// Non-empty when evaluation itself failed (the reason).
  std::string probe_error;

  /// The certificate's verdict at relative tolerance `rel_tol`.
  bool pass(double rel_tol) const {
    return passivity_ok && probe_error.empty() && max_rel_err <= rel_tol;
  }
};

/// Certifies `model` against the exact sparse (g, c, b) description it was
/// reduced from. Never throws on numerical breakdown of the probe solves —
/// a certificate that cannot be evaluated reports passivity_ok = false,
/// max_rel_err = inf, and the reason in probe_error, so the caller's
/// escalation ladder (not an exception) decides what happens next.
/// Deadline expiry (CertifyOptions::cancel) DOES throw the usual typed
/// kDeadlineExceeded: an exhausted budget must stop the cluster, not be
/// misread as an accuracy failure.
Certificate certify_reduced_model(const SparseMatrix& g, const SparseMatrix& c,
                                  const DenseMatrix& b, const ReducedModel& model,
                                  const CertifyOptions& options = {});

/// Convenience wrapper extracting the sparse pencil from the network the
/// model was reduced from (couple must match the reduction call).
Certificate certify_reduced_model(const RcNetwork& network,
                                  const ReducedModel& model, bool couple = true,
                                  const CertifyOptions& options = {});

}  // namespace xtv
