// Fingerprint-keyed cache of certified reduced models.
//
// The paper's economic premise is that a chip decomposes into millions of
// *highly repetitive* small clusters: standard-cell rows repeat the same
// electrical context thousands of times, so two victims routinely present
// bit-identical (G, C, B) pencils to SyMPVL. This cache lets the second
// and every later occurrence skip the Cholesky + block-Lanczos sweep, the
// a-posteriori certificate probes, and the eigendecomposition entirely:
// a fingerprint hit hands back the certified (T, rho) pair together with
// its diagonalization and certificate.
//
// Correctness doctrine — a hit MUST be indistinguishable from a fresh
// computation at the bit level:
//  - The fingerprint hashes the exact 64-bit patterns of the assembled
//    dense G/C/B matrices plus every reduction/certification option that
//    shapes the payload. Identical key => identical inputs => (the kernels
//    being deterministic) identical outputs, so reuse cannot change any
//    finding. False negatives (missed reuse) only cost time.
//  - Permutation invariance holds at the level the repetition actually
//    occurs: element *insertion order* within a cluster. MNA assembly
//    accumulates one addend per element per matrix entry, and IEEE
//    addition of two values is commutative, so clusters built from the
//    same elements in a different order assemble bit-identical matrices
//    and collide on purpose. Reordering *aggressor ports* renumbers nodes
//    and legitimately produces a different pencil — no collision, by
//    design.
//
// Canonical (tolerant) keys — opt-in, certificate-gated: exact keys miss
// when clusters repeat *almost*: aggressors enumerated in a different
// order (renumbered nodes/ports) or element values perturbed below any
// electrical relevance (process-skewed replicas). The canonical index
// keys a second map by a permutation-invariant, value-quantized
// fingerprint: aggressor blocks are sorted by quantized content and the
// whole pencil is hashed in that canonical node/port order with every
// value quantized to a relative tolerance. A canonical hit is NOT
// bit-identity — the caller must re-run the a-posteriori certificate
// against the *requesting* cluster's exact (G, C, B) before reuse, and a
// failed certificate counts as a miss (canonical_cert_rejects). Exact
// lookups stay the default and are checked first; canonical reuse is
// certified-equivalent, never silently trusted.
//
// Concurrency: the table is sharded (fingerprint-selected shard, one
// mutex each) so parallel workers rarely contend; payloads are immutable
// behind shared_ptr<const>. Eviction is per-shard LRU against a byte
// budget; the canonical index is a separate single-mutex LRU over the
// same shared payloads (no lock is ever held while taking another).
// Counters live under the same mutexes as the structures they describe,
// and stats() takes every lock before reading any counter, so a snapshot
// is always internally consistent (hits + misses == lookups). Payload
// storage binds to no ClusterScope (it outlives every victim); see
// resource::ClusterScope::Suspension.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "linalg/dense_matrix.h"
#include "mor/certify.h"
#include "mor/reduced_sim.h"
#include "mor/sympvl.h"

namespace xtv {

/// 128-bit cluster fingerprint (two independent 64-bit FNV-1a streams over
/// the same bytes; the pair makes accidental collision probability
/// negligible at chip scale).
struct ClusterFingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const ClusterFingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator!=(const ClusterFingerprint& o) const { return !(*this == o); }
};

/// Fingerprint of one reduction request: the exact bit patterns of the
/// assembled dense pencil plus every option that shapes the cached
/// payload (reduction order/deflation and the certificate request).
ClusterFingerprint cluster_fingerprint(const DenseMatrix& g,
                                       const DenseMatrix& c,
                                       const DenseMatrix& b,
                                       const SympvlOptions& mor, bool certify,
                                       double cert_rel_tol,
                                       std::size_t cert_freqs, double s_min,
                                       double s_max);

/// Canonical fingerprint of a reduction request plus the aggressor
/// ordering that realizes it. `agg_order[c]` is the 1-based cluster net
/// index of the aggressor placed at canonical slot `c`.
struct CanonicalKey {
  ClusterFingerprint key;
  std::vector<std::size_t> agg_order;
};

/// Permutation/tolerance-invariant fingerprint of a reduction request.
///
/// The cluster's nodes are grouped into per-net blocks:
/// `net_node_begin[k] .. net_node_begin[k+1]` are the matrix rows of
/// cluster net `k` (net 0 = victim, fixed; nets 1.. = aggressors), and
/// net `k` owns port columns `2k` (driver) and `2k+1` (receiver) of B —
/// the GlitchAnalyzer cluster layout. Aggressor blocks are sorted by a
/// quantized content signature (intra-block and victim-coupling entries
/// plus their own B columns); the full pencil is then hashed in that
/// canonical node/port order with every value quantized to the relative
/// tolerance `tol` (tol <= 0 hashes exact bits, making the key
/// permutation-invariant only). Two clusters that differ by aggressor
/// renumbering and sub-`tol` value skew collide on purpose; values
/// straddling a quantization boundary may still miss (a false negative,
/// never a correctness issue — reuse is certificate-gated regardless).
CanonicalKey canonical_cluster_fingerprint(
    const DenseMatrix& g, const DenseMatrix& c, const DenseMatrix& b,
    const std::vector<std::size_t>& net_node_begin, double tol,
    const SympvlOptions& mor, bool certify, double cert_rel_tol,
    std::size_t cert_freqs, double s_min, double s_max);

/// Everything a fingerprint hit reuses: the reduced model, its
/// diagonalization, and the certificate computed with it.
struct CachedReducedModel {
  ReducedModel model;
  ReducedEigenSystem eigen;
  Certificate certificate;    ///< meaningful only when have_certificate
  bool have_certificate = false;
  bool certified = false;     ///< certificate verdict at the keyed rel_tol
  std::size_t bytes = 0;      ///< payload size estimate (eviction currency)

  /// Recomputes the byte estimate from the member extents.
  void account();
};

/// Deep copy of `payload` with its port-indexed storage (model.rho and
/// eigen.eta columns) permuted: column j of the copy is column
/// `port_from[j]` of the original. Used to re-express a canonical hit in
/// the requesting cluster's port order. The certificate is dropped — the
/// caller must re-certify against its own exact pencil before reuse.
std::shared_ptr<CachedReducedModel> permute_payload_ports(
    const CachedReducedModel& payload,
    const std::vector<std::size_t>& port_from);

/// Bounded, sharded, thread-safe reduced-model cache.
class ModelCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;  ///< live entries (snapshot)
    std::size_t bytes = 0;    ///< live payload bytes (snapshot)
    std::size_t canonical_hits = 0;          ///< certified tolerant reuses
    std::size_t canonical_cert_rejects = 0;  ///< tolerant hits that failed re-cert
    std::size_t canonical_entries = 0;       ///< canonical index size (snapshot)
  };

  /// A canonical-index hit: the cached payload plus the aggressor order
  /// (canonical slot -> donor's 1-based net index) the donor was stored
  /// with; composing it with the requester's own canonical order yields
  /// the port permutation that maps the payload to the requester.
  struct CanonicalHit {
    std::shared_ptr<const CachedReducedModel> payload;
    std::vector<std::size_t> agg_order;
  };

  /// `max_bytes` caps the summed payload estimates (split evenly across
  /// shards); 0 means unbounded.
  explicit ModelCache(std::size_t max_bytes, std::size_t shard_count = 16);

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// Returns the payload for `key` (refreshing its LRU position) or null.
  std::shared_ptr<const CachedReducedModel> lookup(
      const ClusterFingerprint& key);

  /// Inserts `payload` under `key`; first writer wins on a racing
  /// duplicate (payloads for equal keys are bit-identical anyway).
  void insert(const ClusterFingerprint& key,
              std::shared_ptr<const CachedReducedModel> payload);

  /// Returns the canonical-index entry for `key` (refreshing its LRU
  /// position), or nullopt. A hit is only a *candidate* for reuse — the
  /// caller must certify it and then report the verdict through
  /// count_canonical_hit() / count_canonical_cert_reject().
  std::optional<CanonicalHit> canonical_lookup(const ClusterFingerprint& key);

  /// Indexes `payload` (already inserted under its exact key, or fresh)
  /// under the canonical `key`; `agg_order` records the aggressor order
  /// this payload's ports follow. First writer wins.
  void canonical_insert(const ClusterFingerprint& key,
                        std::vector<std::size_t> agg_order,
                        std::shared_ptr<const CachedReducedModel> payload);

  /// Records the outcome of certifying a canonical_lookup() candidate.
  void count_canonical_hit();
  void count_canonical_cert_reject();

  Stats stats() const;

 private:
  struct Entry {
    ClusterFingerprint key;
    std::shared_ptr<const CachedReducedModel> payload;
  };
  struct FingerprintHash {
    std::size_t operator()(const ClusterFingerprint& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<ClusterFingerprint, std::list<Entry>::iterator,
                       FingerprintHash>
        index;
    std::size_t bytes = 0;
    // Counters live under the shard mutex with the structures they
    // describe; stats() locks every shard before reading any of them, so
    // a snapshot can never observe a lookup's hit/miss increment without
    // the matching structural change (or vice versa).
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
  };

  struct CanonicalEntry {
    ClusterFingerprint key;
    std::vector<std::size_t> agg_order;
    std::shared_ptr<const CachedReducedModel> payload;
  };

  Shard& shard_for(const ClusterFingerprint& key) {
    return *shards_[key.hi % shards_.size()];
  }

  std::size_t shard_budget_ = 0;  ///< per-shard byte cap (0 = unbounded)
  std::vector<std::unique_ptr<Shard>> shards_;

  // Canonical index: one mutex, its own LRU over the shared payloads.
  // Never locked while a shard mutex is held (and vice versa), except in
  // stats(), which takes shards first (fixed index order) then this.
  mutable std::mutex canonical_mutex_;
  std::list<CanonicalEntry> canonical_lru_;  ///< front = most recently used
  std::unordered_map<ClusterFingerprint, std::list<CanonicalEntry>::iterator,
                     FingerprintHash>
      canonical_index_;
  std::size_t canonical_bytes_ = 0;
  std::size_t canonical_budget_ = 0;  ///< byte cap (0 = unbounded)
  std::size_t canonical_hits_ = 0;
  std::size_t canonical_cert_rejects_ = 0;
};

}  // namespace xtv
