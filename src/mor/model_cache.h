// Fingerprint-keyed cache of certified reduced models.
//
// The paper's economic premise is that a chip decomposes into millions of
// *highly repetitive* small clusters: standard-cell rows repeat the same
// electrical context thousands of times, so two victims routinely present
// bit-identical (G, C, B) pencils to SyMPVL. This cache lets the second
// and every later occurrence skip the Cholesky + block-Lanczos sweep, the
// a-posteriori certificate probes, and the eigendecomposition entirely:
// a fingerprint hit hands back the certified (T, rho) pair together with
// its diagonalization and certificate.
//
// Correctness doctrine — a hit MUST be indistinguishable from a fresh
// computation at the bit level:
//  - The fingerprint hashes the exact 64-bit patterns of the assembled
//    dense G/C/B matrices plus every reduction/certification option that
//    shapes the payload. Identical key => identical inputs => (the kernels
//    being deterministic) identical outputs, so reuse cannot change any
//    finding. False negatives (missed reuse) only cost time.
//  - Permutation invariance holds at the level the repetition actually
//    occurs: element *insertion order* within a cluster. MNA assembly
//    accumulates one addend per element per matrix entry, and IEEE
//    addition of two values is commutative, so clusters built from the
//    same elements in a different order assemble bit-identical matrices
//    and collide on purpose. Reordering *aggressor ports* renumbers nodes
//    and legitimately produces a different pencil — no collision, by
//    design.
//
// Concurrency: the table is sharded (fingerprint-selected shard, one
// mutex each) so parallel workers rarely contend; payloads are immutable
// behind shared_ptr<const>. Eviction is per-shard LRU against a byte
// budget. Payload storage binds to no ClusterScope (it outlives every
// victim); see resource::ClusterScope::Suspension.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "linalg/dense_matrix.h"
#include "mor/certify.h"
#include "mor/reduced_sim.h"
#include "mor/sympvl.h"

namespace xtv {

/// 128-bit cluster fingerprint (two independent 64-bit FNV-1a streams over
/// the same bytes; the pair makes accidental collision probability
/// negligible at chip scale).
struct ClusterFingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const ClusterFingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator!=(const ClusterFingerprint& o) const { return !(*this == o); }
};

/// Fingerprint of one reduction request: the exact bit patterns of the
/// assembled dense pencil plus every option that shapes the cached
/// payload (reduction order/deflation and the certificate request).
ClusterFingerprint cluster_fingerprint(const DenseMatrix& g,
                                       const DenseMatrix& c,
                                       const DenseMatrix& b,
                                       const SympvlOptions& mor, bool certify,
                                       double cert_rel_tol,
                                       std::size_t cert_freqs, double s_min,
                                       double s_max);

/// Everything a fingerprint hit reuses: the reduced model, its
/// diagonalization, and the certificate computed with it.
struct CachedReducedModel {
  ReducedModel model;
  ReducedEigenSystem eigen;
  Certificate certificate;    ///< meaningful only when have_certificate
  bool have_certificate = false;
  bool certified = false;     ///< certificate verdict at the keyed rel_tol
  std::size_t bytes = 0;      ///< payload size estimate (eviction currency)

  /// Recomputes the byte estimate from the member extents.
  void account();
};

/// Bounded, sharded, thread-safe reduced-model cache.
class ModelCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;  ///< live entries (snapshot)
    std::size_t bytes = 0;    ///< live payload bytes (snapshot)
  };

  /// `max_bytes` caps the summed payload estimates (split evenly across
  /// shards); 0 means unbounded.
  explicit ModelCache(std::size_t max_bytes, std::size_t shard_count = 16);

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// Returns the payload for `key` (refreshing its LRU position) or null.
  std::shared_ptr<const CachedReducedModel> lookup(
      const ClusterFingerprint& key);

  /// Inserts `payload` under `key`; first writer wins on a racing
  /// duplicate (payloads for equal keys are bit-identical anyway).
  void insert(const ClusterFingerprint& key,
              std::shared_ptr<const CachedReducedModel> payload);

  Stats stats() const;

 private:
  struct Entry {
    ClusterFingerprint key;
    std::shared_ptr<const CachedReducedModel> payload;
  };
  struct FingerprintHash {
    std::size_t operator()(const ClusterFingerprint& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<ClusterFingerprint, std::list<Entry>::iterator,
                       FingerprintHash>
        index;
    std::size_t bytes = 0;
  };

  Shard& shard_for(const ClusterFingerprint& key) {
    return *shards_[key.hi % shards_.size()];
  }

  std::size_t shard_budget_ = 0;  ///< per-shard byte cap (0 = unbounded)
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> insertions_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace xtv
