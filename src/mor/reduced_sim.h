// Fast time-domain simulation of the SyMPVL reduced model with nonlinear
// driver terminations (paper Section 3, eqs. (4)-(7)).
//
// The reduced system v' + T dv'/dt = rho * i is diagonalized once per
// cluster by factoring T = Q^T D Q and substituting x = Q v', eta = Q rho:
//     D dx/dt + x = eta * (u(t) + i_nl(V_x, t)),   V_x = eta^T x
// where u(t) collects the known (linear) port current inputs — aggressor
// Thevenin sources become current injections after their conductances are
// stamped into G — and i_nl collects the nonlinear driver currents.
// A linear multistep discretization writes dx/dt|_k = alpha x_k + beta_k;
// each Newton iteration then solves a Jacobian that is a rank-m
// modification of a diagonal matrix,
//     (I + alpha D + eta_S g eta_S^T) dx = -residual          (eq. 7)
// handled in O(q m^2) via the Woodbury identity. This is what makes
// full-chip crosstalk verification tractable: per-step cost is linear in
// the reduced order regardless of the original cluster size.
#pragma once

#include <map>
#include <memory>

#include "mor/sympvl.h"
#include "netlist/circuit.h"
#include "spice/waveform.h"
#include "util/deadline.h"

namespace xtv {

struct ReducedSimOptions {
  double tstop = 0.0;           ///< required > 0
  double dt = 0.0;              ///< 0 = tstop/2000
  bool trapezoidal = true;      ///< false = backward Euler
  double v_abstol = 1e-7;       ///< Newton convergence on port voltages (V)
  int max_newton = 50;
  /// Local dt refinement budget: a time point whose Newton diverges (or
  /// whose LTE estimate blows up) is retried with a halved step up to this
  /// many times before the run reports NumericalError. Subsequent points
  /// return to the nominal dt.
  int max_step_halvings = 6;
  /// Step-size rejection on local-truncation blowup: when > 0, a step
  /// whose second-difference port-voltage LTE proxy exceeds this many
  /// volts is rejected and retried at half the step. 0 (default) keeps
  /// the fixed-step behavior exactly.
  double lte_vtol = 0.0;
  /// Cooperative cancellation: polled once per attempted time step; an
  /// expired/cancelled token raises kDeadlineExceeded (the verifier's
  /// per-cluster wall-clock budget). Null = never cancelled. Not owned;
  /// must outlive the run.
  const CancelToken* cancel = nullptr;
};

struct ReducedSimResult {
  std::vector<Waveform> port_voltages;  ///< one waveform per model port
  std::size_t steps = 0;
  std::size_t newton_iterations = 0;
  std::size_t step_rejections = 0;      ///< Newton/LTE retries at halved dt
};

/// The diagonalized reduced system T = Q^T D Q: everything the transient
/// engine needs, decoupled from the simulator instance so a certified
/// eigendecomposition can be cached and reused across electrically
/// identical clusters (mor/model_cache.h).
struct ReducedEigenSystem {
  Vector d;         ///< eigenvalues of T (clamped to >= 0)
  DenseMatrix eta;  ///< Q * rho  (q x p)
};

/// Diagonalizes the reduced model once, enforcing the passivity contract:
/// a genuinely indefinite T (beyond round-off) raises kNotPassive; tiny
/// negative round-off eigenvalues are clamped to zero.
ReducedEigenSystem diagonalize_reduced(const ReducedModel& model);

/// One simulator instance per reduced model; terminations/inputs may be
/// reconfigured between runs (each run() starts from a fresh DC solve).
class ReducedSimulator {
 public:
  explicit ReducedSimulator(const ReducedModel& model);

  /// Adopts an existing (possibly cached) diagonalization, skipping the
  /// eigen solve entirely.
  explicit ReducedSimulator(ReducedEigenSystem system);

  /// Injected current INTO port `port` as a function of time (the linear
  /// excitation path: e.g. a Thevenin aggressor source V(t)/R after its
  /// 1/R was stamped into G pre-reduction).
  void set_input(std::size_t port, SourceWave current);

  /// Attaches a nonlinear one-port device at `port`; its current(v, t) is
  /// added to the port's injected current. At most one device per port.
  void set_termination(std::size_t port, std::shared_ptr<const OnePortDevice> device);

  /// Removes all inputs and terminations.
  void clear();

  /// Solves the DC fixed point x = eta * i(V_x, 0) and returns the port
  /// voltages (used for initial conditions and sanity checks).
  Vector dc_port_voltages();

  /// Runs the transient from the DC point.
  ReducedSimResult run(const ReducedSimOptions& options);

  std::size_t port_count() const { return eta_.cols(); }
  std::size_t order() const { return d_.size(); }

  /// Read access for the lockstep batch engine (mor/batch_sim.{h,cpp}),
  /// which flattens the configuration into structure-of-arrays lanes and
  /// must replicate run()'s arithmetic on exactly this data.
  const Vector& eigenvalues() const { return d_; }
  const DenseMatrix& port_modes() const { return eta_; }
  const std::map<std::size_t, SourceWave>& inputs() const { return inputs_; }
  const std::map<std::size_t, std::shared_ptr<const OnePortDevice>>&
  terminations() const {
    return terminations_;
  }

 private:
  /// Total known (linear) current injections at time t, per port.
  Vector input_currents(double t) const;

  /// One Newton solve of (I + alpha D) x + D beta = eta * i_total(V_x, t).
  /// Returns true on convergence; x updated in place.
  bool newton_solve(Vector& x, double t, double alpha, const Vector& d_beta,
                    const ReducedSimOptions& options, std::size_t& iterations) const;

  Vector d_;           ///< eigenvalues of T (ascending, >= 0 up to round-off)
  DenseMatrix eta_;    ///< Q * rho  (q x p)
  std::map<std::size_t, SourceWave> inputs_;
  std::map<std::size_t, std::shared_ptr<const OnePortDevice>> terminations_;

  /// Newton/recording scratch reused across iterations, steps, and runs
  /// (mutable: newton_solve is logically const). Buffers are assign()ed to
  /// their full extent before use, so reuse cannot change any value.
  struct Scratch {
    Vector dd_inv, vports, itotal, g, eta_i, r, dx, srhs, rgw, dv;
    Vector rec, lte_vt, lte_vc, lte_vp;
    std::vector<std::size_t> nl_ports;
  };
  mutable Scratch scratch_;
};

}  // namespace xtv
