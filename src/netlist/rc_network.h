// Linear coupled-RC network view with I/O ports.
//
// This is the object SyMPVL reduces (paper Section 3, eq. (1)):
//   G v + C dv/dt = B i_x
// where G collects resistor (plus stamped termination-conductance) stamps,
// C collects grounded and coupling capacitor stamps, and B selects the
// I/O ports. Ground is implicit: matrices only cover internal nodes, so a
// network whose every node has a resistive path to ground (guaranteed by
// the per-port gmin/termination stamps) yields a symmetric positive
// definite G as the paper assumes.
#pragma once

#include <string>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"
#include "netlist/circuit.h"

namespace xtv {

/// Coupled-RC cluster: nodes (ground implicit), resistors, capacitors,
/// ports. Produces the dense MNA matrices consumed by the MOR engine and
/// can export itself into a `Circuit` for golden SPICE-level analysis.
class RcNetwork {
 public:
  /// Adds an internal node; returns its index (0-based; ground is NOT a
  /// node here — use kGround as an endpoint instead).
  int add_node(const std::string& name = "");

  /// Endpoint value meaning "ground" for element connections.
  static constexpr int kGround = -1;

  int node_count() const { return static_cast<int>(names_.size()); }
  const std::string& node_name(int id) const { return names_.at(static_cast<std::size_t>(id)); }

  /// Resistor between nodes a and b (either may be kGround).
  void add_resistor(int a, int b, double ohms);

  /// Capacitor between nodes a and b (either may be kGround). `coupling`
  /// tags inter-net coupling caps so decoupled ("grounded") variants can be
  /// derived for the Table-2 style comparison.
  void add_capacitor(int a, int b, double farads, bool coupling = false);

  /// Declares node `node` as I/O port number ports().size(); returns the
  /// port index. A node may be a port at most once.
  int add_port(int node);

  std::size_t port_count() const { return ports_.size(); }
  const std::vector<int>& ports() const { return ports_; }
  int port_node(std::size_t p) const { return ports_.at(p); }

  /// Stamps a termination conductance `g` (to ground) at port p into G.
  /// Used to fold linear driver/holder resistances into the reduced model
  /// and to regularize otherwise-floating ports (gmin).
  void stamp_port_conductance(std::size_t p, double g);

  /// Conductance stamped so far at port p.
  double port_conductance(std::size_t p) const { return port_g_.at(p); }

  /// Dense G (conductance) matrix over internal nodes, including port
  /// termination stamps. Symmetric; positive definite whenever every node
  /// has a resistive path to ground.
  DenseMatrix g_matrix() const;

  /// Dense C (capacitance) matrix. `couple` selects whether coupling caps
  /// appear as floating caps (true, the real circuit) or grounded at both
  /// ends (false — the "decoupled" analysis of Table 2).
  DenseMatrix c_matrix(bool couple = true) const;

  /// Port incidence matrix B (nodes x ports): B(node, p) = 1 at each port
  /// node.
  DenseMatrix b_matrix() const;

  /// Sparse (CSC) variants of G and C with identical stamps — what the
  /// certification layer factors as the shifted pencil (G + s C) without
  /// densifying the cluster (mor/certify.h).
  SparseMatrix g_sparse() const;
  SparseMatrix c_sparse(bool couple = true) const;

  /// Total capacitance seen by a node (sum of incident caps, coupling caps
  /// included at full value).
  double node_total_cap(int node) const;

  /// Exports the network into `dst`, creating fresh nodes. Port p is wired
  /// to dst node `port_nodes[p]` (must be provided for every port).
  /// Termination conductances stamped via stamp_port_conductance are
  /// exported as resistors to ground so SPICE sees the identical linear
  /// circuit. Returns the dst node id for every internal node.
  std::vector<int> export_to(Circuit& dst, const std::vector<int>& port_nodes,
                             bool include_port_conductances = true) const;

  /// Returns a copy with every coupling capacitor replaced by two grounded
  /// caps of the same value — the "decoupled" analysis variant of the
  /// paper's Table 2 (total load preserved, no inter-net paths).
  RcNetwork decoupled_copy() const;

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }

 private:
  void check_endpoint(int id) const;

  std::vector<std::string> names_;
  std::vector<Resistor> resistors_;    // node ids or kGround
  std::vector<Capacitor> capacitors_;  // node ids or kGround
  std::vector<int> ports_;
  std::vector<double> port_g_;
};

}  // namespace xtv
