#include "netlist/rc_network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace xtv {

int RcNetwork::add_node(const std::string& name) {
  const int id = node_count();
  names_.push_back(name.empty() ? "n" + std::to_string(id) : name);
  return id;
}

void RcNetwork::check_endpoint(int id) const {
  if (id != kGround && (id < 0 || id >= node_count()))
    throw std::runtime_error("RcNetwork: invalid node " + std::to_string(id));
}

void RcNetwork::add_resistor(int a, int b, double ohms) {
  check_endpoint(a);
  check_endpoint(b);
  if (ohms <= 0.0) throw std::runtime_error("RcNetwork: resistor must be positive");
  if (a == b) throw std::runtime_error("RcNetwork: resistor endpoints equal");
  resistors_.push_back({a, b, ohms});
}

void RcNetwork::add_capacitor(int a, int b, double farads, bool coupling) {
  check_endpoint(a);
  check_endpoint(b);
  if (farads < 0.0) throw std::runtime_error("RcNetwork: capacitor must be >= 0");
  if (a == b) throw std::runtime_error("RcNetwork: capacitor endpoints equal");
  capacitors_.push_back({a, b, farads, coupling});
}

int RcNetwork::add_port(int node) {
  check_endpoint(node);
  if (node == kGround) throw std::runtime_error("RcNetwork: port cannot be ground");
  if (std::find(ports_.begin(), ports_.end(), node) != ports_.end())
    throw std::runtime_error("RcNetwork: node is already a port");
  ports_.push_back(node);
  port_g_.push_back(0.0);
  return static_cast<int>(ports_.size()) - 1;
}

void RcNetwork::stamp_port_conductance(std::size_t p, double g) {
  if (g < 0.0) throw std::runtime_error("RcNetwork: negative port conductance");
  port_g_.at(p) += g;
}

DenseMatrix RcNetwork::g_matrix() const {
  const auto n = static_cast<std::size_t>(node_count());
  DenseMatrix g(n, n);
  for (const auto& r : resistors_) {
    const double cond = 1.0 / r.ohms;
    if (r.a != kGround) g(static_cast<std::size_t>(r.a), static_cast<std::size_t>(r.a)) += cond;
    if (r.b != kGround) g(static_cast<std::size_t>(r.b), static_cast<std::size_t>(r.b)) += cond;
    if (r.a != kGround && r.b != kGround) {
      g(static_cast<std::size_t>(r.a), static_cast<std::size_t>(r.b)) -= cond;
      g(static_cast<std::size_t>(r.b), static_cast<std::size_t>(r.a)) -= cond;
    }
  }
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    const auto node = static_cast<std::size_t>(ports_[p]);
    g(node, node) += port_g_[p];
  }
  return g;
}

DenseMatrix RcNetwork::c_matrix(bool couple) const {
  const auto n = static_cast<std::size_t>(node_count());
  DenseMatrix c(n, n);
  for (const auto& cap : capacitors_) {
    const bool treat_coupled = couple || !cap.coupling;
    if (treat_coupled) {
      if (cap.a != kGround)
        c(static_cast<std::size_t>(cap.a), static_cast<std::size_t>(cap.a)) += cap.farads;
      if (cap.b != kGround)
        c(static_cast<std::size_t>(cap.b), static_cast<std::size_t>(cap.b)) += cap.farads;
      if (cap.a != kGround && cap.b != kGround) {
        c(static_cast<std::size_t>(cap.a), static_cast<std::size_t>(cap.b)) -= cap.farads;
        c(static_cast<std::size_t>(cap.b), static_cast<std::size_t>(cap.a)) -= cap.farads;
      }
    } else {
      // Decoupled analysis: the coupling cap is split into two grounded
      // caps of the same value (paper Section 2, Table 2 setup).
      if (cap.a != kGround)
        c(static_cast<std::size_t>(cap.a), static_cast<std::size_t>(cap.a)) += cap.farads;
      if (cap.b != kGround)
        c(static_cast<std::size_t>(cap.b), static_cast<std::size_t>(cap.b)) += cap.farads;
    }
  }
  return c;
}

DenseMatrix RcNetwork::b_matrix() const {
  DenseMatrix b(static_cast<std::size_t>(node_count()), ports_.size());
  for (std::size_t p = 0; p < ports_.size(); ++p)
    b(static_cast<std::size_t>(ports_[p]), p) = 1.0;
  return b;
}

SparseMatrix RcNetwork::g_sparse() const {
  const auto n = static_cast<std::size_t>(node_count());
  TripletList t(n, n);
  for (const auto& r : resistors_) {
    const double cond = 1.0 / r.ohms;
    if (r.a != kGround)
      t.add(static_cast<std::size_t>(r.a), static_cast<std::size_t>(r.a), cond);
    if (r.b != kGround)
      t.add(static_cast<std::size_t>(r.b), static_cast<std::size_t>(r.b), cond);
    if (r.a != kGround && r.b != kGround) {
      t.add(static_cast<std::size_t>(r.a), static_cast<std::size_t>(r.b), -cond);
      t.add(static_cast<std::size_t>(r.b), static_cast<std::size_t>(r.a), -cond);
    }
  }
  for (std::size_t p = 0; p < ports_.size(); ++p)
    t.add(static_cast<std::size_t>(ports_[p]), static_cast<std::size_t>(ports_[p]),
          port_g_[p]);
  return SparseMatrix::from_triplets(t);
}

SparseMatrix RcNetwork::c_sparse(bool couple) const {
  const auto n = static_cast<std::size_t>(node_count());
  TripletList t(n, n);
  for (const auto& cap : capacitors_) {
    const bool treat_coupled = couple || !cap.coupling;
    if (cap.a != kGround)
      t.add(static_cast<std::size_t>(cap.a), static_cast<std::size_t>(cap.a),
            cap.farads);
    if (cap.b != kGround)
      t.add(static_cast<std::size_t>(cap.b), static_cast<std::size_t>(cap.b),
            cap.farads);
    if (treat_coupled && cap.a != kGround && cap.b != kGround) {
      t.add(static_cast<std::size_t>(cap.a), static_cast<std::size_t>(cap.b),
            -cap.farads);
      t.add(static_cast<std::size_t>(cap.b), static_cast<std::size_t>(cap.a),
            -cap.farads);
    }
  }
  return SparseMatrix::from_triplets(t);
}

double RcNetwork::node_total_cap(int node) const {
  check_endpoint(node);
  double total = 0.0;
  for (const auto& cap : capacitors_)
    if (cap.a == node || cap.b == node) total += cap.farads;
  return total;
}

RcNetwork RcNetwork::decoupled_copy() const {
  RcNetwork out = *this;
  out.capacitors_.clear();
  for (const auto& cap : capacitors_) {
    if (!cap.coupling) {
      out.capacitors_.push_back(cap);
      continue;
    }
    if (cap.a != kGround) out.capacitors_.push_back({cap.a, kGround, cap.farads, false});
    if (cap.b != kGround) out.capacitors_.push_back({cap.b, kGround, cap.farads, false});
  }
  return out;
}

std::vector<int> RcNetwork::export_to(Circuit& dst,
                                      const std::vector<int>& port_nodes,
                                      bool include_port_conductances) const {
  if (port_nodes.size() != ports_.size())
    throw std::runtime_error("RcNetwork::export_to: port mapping size mismatch");

  std::vector<int> xlat(static_cast<std::size_t>(node_count()), -1);
  for (std::size_t p = 0; p < ports_.size(); ++p)
    xlat[static_cast<std::size_t>(ports_[p])] = port_nodes[p];
  for (int i = 0; i < node_count(); ++i) {
    auto& slot = xlat[static_cast<std::size_t>(i)];
    if (slot < 0) slot = dst.add_node();
  }

  auto tr = [&](int id) {
    return id == kGround ? Circuit::ground() : xlat[static_cast<std::size_t>(id)];
  };
  for (const auto& r : resistors_) dst.add_resistor(tr(r.a), tr(r.b), r.ohms);
  for (const auto& c : capacitors_)
    dst.add_capacitor(tr(c.a), tr(c.b), c.farads, c.coupling);
  if (include_port_conductances) {
    for (std::size_t p = 0; p < ports_.size(); ++p)
      if (port_g_[p] > 0.0)
        dst.add_resistor(tr(ports_[p]), Circuit::ground(), 1.0 / port_g_[p]);
  }
  return xlat;
}

}  // namespace xtv
