#include "netlist/circuit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace xtv {

SourceWave SourceWave::dc(double value) {
  SourceWave w;
  w.points_ = {{0.0, value}};
  return w;
}

SourceWave SourceWave::pwl(std::vector<std::pair<double, double>> points) {
  if (points.empty()) throw std::runtime_error("SourceWave::pwl: empty");
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].first <= points[i - 1].first)
      throw std::runtime_error("SourceWave::pwl: times must increase");
  SourceWave w;
  w.points_ = std::move(points);
  return w;
}

SourceWave SourceWave::pulse(double v0, double v1, double delay, double rise,
                             double width, double fall) {
  return pwl({{0.0, v0},
              {delay, v0},
              {delay + rise, v1},
              {delay + rise + width, v1},
              {delay + rise + width + fall, v0}});
}

SourceWave SourceWave::ramp(double v0, double v1, double delay, double slew) {
  if (delay <= 0.0) return pwl({{0.0, v0}, {slew, v1}});
  return pwl({{0.0, v0}, {delay, v0}, {delay + slew, v1}});
}

double SourceWave::value(double t) const {
  assert(!points_.empty());
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double tv, const std::pair<double, double>& p) { return tv < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double frac = (t - lo.first) / (hi.first - lo.first);
  return lo.second + frac * (hi.second - lo.second);
}

double SourceWave::max_slope() const {
  double m = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dt = points_[i].first - points_[i - 1].first;
    const double dv = points_[i].second - points_[i - 1].second;
    if (dt > 0.0) m = std::max(m, std::fabs(dv / dt));
  }
  return m;
}

Circuit::Circuit() { node_names_.push_back("0"); }

int Circuit::add_node(const std::string& name) {
  const int id = node_count();
  node_names_.push_back(name.empty() ? "n" + std::to_string(id) : name);
  return id;
}

int Circuit::find_node(const std::string& name) const {
  for (int i = 0; i < node_count(); ++i)
    if (node_names_[static_cast<std::size_t>(i)] == name) return i;
  return -1;
}

void Circuit::check_node(int id) const {
  if (id < 0 || id >= node_count())
    throw std::runtime_error("Circuit: invalid node id " + std::to_string(id));
}

void Circuit::add_resistor(int a, int b, double ohms) {
  check_node(a);
  check_node(b);
  if (ohms <= 0.0) throw std::runtime_error("Circuit: resistor must be positive");
  resistors_.push_back({a, b, ohms});
}

void Circuit::add_capacitor(int a, int b, double farads, bool coupling) {
  check_node(a);
  check_node(b);
  if (farads < 0.0) throw std::runtime_error("Circuit: capacitor must be >= 0");
  capacitors_.push_back({a, b, farads, coupling});
}

void Circuit::add_vsource(int pos, int neg, SourceWave wave) {
  check_node(pos);
  check_node(neg);
  vsources_.push_back({pos, neg, std::move(wave)});
}

void Circuit::add_isource(int from, int into, SourceWave wave) {
  check_node(from);
  check_node(into);
  isources_.push_back({from, into, std::move(wave)});
}

int Circuit::add_model(const MosModel& model) {
  models_.push_back(model);
  return static_cast<int>(models_.size()) - 1;
}

void Circuit::add_mosfet(int d, int g, int s, int model, double w, double l) {
  check_node(d);
  check_node(g);
  check_node(s);
  if (model < 0 || model >= static_cast<int>(models_.size()))
    throw std::runtime_error("Circuit: invalid model index");
  if (w <= 0.0 || l <= 0.0)
    throw std::runtime_error("Circuit: MOSFET dimensions must be positive");
  mosfets_.push_back({d, g, s, model, w, l});
}

void Circuit::add_termination(int node, std::shared_ptr<const OnePortDevice> device) {
  check_node(node);
  if (!device) throw std::runtime_error("Circuit: null termination device");
  terminations_.push_back({node, std::move(device)});
}

std::vector<int> Circuit::merge(const Circuit& other,
                                const std::vector<int>& their_node,
                                const std::vector<int>& my_node) {
  if (their_node.size() != my_node.size())
    throw std::runtime_error("Circuit::merge: mapping arrays differ in length");

  std::vector<int> xlat(static_cast<std::size_t>(other.node_count()), -1);
  xlat[0] = ground();
  for (std::size_t i = 0; i < their_node.size(); ++i) {
    other.check_node(their_node[i]);
    check_node(my_node[i]);
    xlat[static_cast<std::size_t>(their_node[i])] = my_node[i];
  }
  for (int id = 1; id < other.node_count(); ++id) {
    auto& slot = xlat[static_cast<std::size_t>(id)];
    if (slot < 0) slot = add_node();
  }

  // Model indices shift by our current model count.
  const int model_base = static_cast<int>(models_.size());
  for (const auto& m : other.models_) models_.push_back(m);

  auto tr = [&](int id) { return xlat[static_cast<std::size_t>(id)]; };
  for (const auto& r : other.resistors_)
    resistors_.push_back({tr(r.a), tr(r.b), r.ohms});
  for (const auto& c : other.capacitors_)
    capacitors_.push_back({tr(c.a), tr(c.b), c.farads, c.coupling});
  for (const auto& v : other.vsources_)
    vsources_.push_back({tr(v.pos), tr(v.neg), v.wave});
  for (const auto& i : other.isources_)
    isources_.push_back({tr(i.from), tr(i.into), i.wave});
  for (const auto& m : other.mosfets_)
    mosfets_.push_back({tr(m.d), tr(m.g), tr(m.s), m.model + model_base, m.w, m.l});
  for (const auto& nt : other.terminations_)
    terminations_.push_back({tr(nt.node), nt.device});
  return xlat;
}

}  // namespace xtv
