// SPICE deck writer/parser (subset).
//
// Supports the element set this library generates: R, C, V/I with DC or PWL
// waveforms, and Level-1 MOSFETs with .model cards. Useful for exporting
// clusters to an external simulator for spot checks and for reading small
// hand-written decks in tests and examples. Nonlinear table terminations
// have no SPICE-standard form and are skipped with a comment line.
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace xtv {

/// Renders the circuit as a SPICE deck (title line + elements + .end).
std::string write_spice_deck(const Circuit& circuit,
                             const std::string& title = "xtv deck");

/// Parses a (subset) SPICE deck into a Circuit. Recognized cards:
///   R<name> n1 n2 value
///   C<name> n1 n2 value
///   V<name> n+ n- DC value | PWL(t1 v1 t2 v2 ...)
///   I<name> n+ n- DC value | PWL(...)
///   M<name> nd ng ns nb modelname W=... L=...
///   .model name NMOS|PMOS (VT0=... KP=... LAMBDA=...)
///   .end, comments (*, ;), continuation lines (+)
/// Values accept SI suffixes f p n u m k meg g. Node "0"/"gnd" is ground.
/// Throws std::runtime_error with a line number on malformed input.
Circuit parse_spice_deck(const std::string& deck);

/// Parses a numeric literal with SPICE engineering suffixes ("2.5k",
/// "10MEG", "4f"). Throws on malformed input.
double parse_spice_value(const std::string& text);

}  // namespace xtv
