#include "netlist/spice_deck.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

namespace xtv {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

double parse_spice_value(const std::string& text) {
  if (text.empty()) throw std::runtime_error("empty numeric value");
  std::size_t pos = 0;
  double base = 0.0;
  try {
    base = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::runtime_error("malformed numeric value '" + text + "'");
  }
  std::string suffix = lower(text.substr(pos));
  // Strip trailing unit letters SPICE ignores (e.g. "2.5kohm", "10pf").
  static const std::map<std::string, double> kScale = {
      {"", 1.0},   {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6},
      {"m", 1e-3}, {"k", 1e3},   {"meg", 1e6}, {"g", 1e9},  {"t", 1e12}};
  double value = base;
  bool matched = false;
  // Longest-match on known prefixes of the suffix.
  for (const char* key : {"meg", "f", "p", "n", "u", "m", "k", "g", "t"}) {
    if (suffix.rfind(key, 0) == 0) {
      value = base * kScale.at(key);
      matched = true;
      break;
    }
  }
  if (!matched && !suffix.empty() &&
      !std::isalpha(static_cast<unsigned char>(suffix[0])))
    throw std::runtime_error("malformed numeric value '" + text + "'");
  // Unknown letters = unit annotation, scale 1. Either way the result must
  // be a usable number: the scale suffix can overflow a value std::stod
  // accepted (e.g. "1e308k"), which would otherwise leak inf into the MNA
  // stamps.
  if (!std::isfinite(value))
    throw std::runtime_error("non-finite numeric value '" + text + "'");
  return value;
}

std::string write_spice_deck(const Circuit& c, const std::string& title) {
  std::ostringstream out;
  out << "* " << title << '\n';
  auto node = [&](int id) { return c.node_name(id); };

  int idx = 0;
  for (const auto& r : c.resistors())
    out << 'R' << ++idx << ' ' << node(r.a) << ' ' << node(r.b) << ' '
        << fmt(r.ohms) << '\n';
  idx = 0;
  for (const auto& cap : c.capacitors())
    out << 'C' << ++idx << ' ' << node(cap.a) << ' ' << node(cap.b) << ' '
        << fmt(cap.farads) << (cap.coupling ? " * coupling" : "") << '\n';
  auto emit_wave = [&](const SourceWave& w) {
    if (w.is_dc()) {
      out << "DC " << fmt(w.value(0.0));
      return;
    }
    out << "PWL(";
    const auto& pts = w.breakpoints();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      out << fmt(pts[i].first) << ' ' << fmt(pts[i].second);
      if (i + 1 != pts.size()) out << ' ';
    }
    out << ')';
  };
  idx = 0;
  for (const auto& v : c.vsources()) {
    out << 'V' << ++idx << ' ' << node(v.pos) << ' ' << node(v.neg) << ' ';
    emit_wave(v.wave);
    out << '\n';
  }
  idx = 0;
  for (const auto& i : c.isources()) {
    out << 'I' << ++idx << ' ' << node(i.from) << ' ' << node(i.into) << ' ';
    emit_wave(i.wave);
    out << '\n';
  }
  for (std::size_t m = 0; m < c.models().size(); ++m) {
    const auto& mod = c.models()[m];
    out << ".model m" << m << ' '
        << (mod.type == MosType::kNmos ? "NMOS" : "PMOS") << " (VT0="
        << fmt(mod.vt0) << " KP=" << fmt(mod.kp) << " LAMBDA=" << fmt(mod.lambda)
        << ")\n";
  }
  idx = 0;
  for (const auto& m : c.mosfets())
    out << 'M' << ++idx << ' ' << node(m.d) << ' ' << node(m.g) << ' '
        << node(m.s) << ' ' << node(Circuit::ground()) << " m" << m.model
        << " W=" << fmt(m.w) << " L=" << fmt(m.l) << '\n';
  if (!c.terminations().empty())
    out << "* " << c.terminations().size()
        << " nonlinear table termination(s) omitted (no SPICE form)\n";
  out << ".end\n";
  return out.str();
}

namespace {

struct Tokenizer {
  std::vector<std::string> tokens;

  explicit Tokenizer(const std::string& line) {
    std::string cur;
    for (char ch : line) {
      if (std::isspace(static_cast<unsigned char>(ch)) || ch == '(' || ch == ')' ||
          ch == ',' || ch == '=') {
        if (!cur.empty()) tokens.push_back(cur);
        cur.clear();
        if (ch == '=') tokens.emplace_back("=");
      } else {
        cur.push_back(ch);
      }
    }
    if (!cur.empty()) tokens.push_back(cur);
  }
};

class DeckParser {
 public:
  explicit DeckParser(const std::string& deck) : deck_(deck) {}

  Circuit parse() {
    std::vector<std::string> lines = logical_lines();
    // SPICE convention: the first line is always the title.
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::string line = strip_comment(lines[i]);
      if (line.empty()) continue;
      parse_line(line, i + 1);
    }
    resolve_mosfets();
    return std::move(circuit_);
  }

 private:
  static std::string strip_comment(const std::string& line) {
    if (!line.empty() && (line[0] == '*' || line[0] == ';')) return "";
    const auto pos = line.find(" ;");
    std::string out = pos == std::string::npos ? line : line.substr(0, pos);
    // Trim.
    const auto b = out.find_first_not_of(" \t\r");
    if (b == std::string::npos) return "";
    const auto e = out.find_last_not_of(" \t\r");
    return out.substr(b, e - b + 1);
  }

  // Joins continuation lines (leading '+').
  std::vector<std::string> logical_lines() {
    std::vector<std::string> out;
    std::istringstream in(deck_);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '+') {
        if (out.empty()) throw std::runtime_error("deck: continuation with no prior line");
        out.back() += " " + line.substr(1);
      } else {
        out.push_back(line);
      }
    }
    return out;
  }

  int node(const std::string& name) {
    const std::string key = lower(name);
    if (key == "0" || key == "gnd") return Circuit::ground();
    const int found = circuit_.find_node(name);
    return found >= 0 ? found : circuit_.add_node(name);
  }

  [[noreturn]] void fail(std::size_t line_no, const std::string& why) const {
    throw std::runtime_error("deck line " + std::to_string(line_no) + ": " + why);
  }

  // parse_spice_value with the deck line number prepended, so a bad value
  // in a 10k-line extracted deck is findable.
  double num(const std::string& text, std::size_t line_no) const {
    try {
      return parse_spice_value(text);
    } catch (const std::exception& e) {
      fail(line_no, e.what());
    }
  }

  SourceWave parse_wave(const std::vector<std::string>& tok, std::size_t start,
                        std::size_t line_no) {
    if (start >= tok.size()) fail(line_no, "missing source value");
    const std::string kind = lower(tok[start]);
    if (kind == "dc") {
      if (start + 1 >= tok.size()) fail(line_no, "DC needs a value");
      return SourceWave::dc(num(tok[start + 1], line_no));
    }
    if (kind == "pwl") {
      std::vector<std::pair<double, double>> pts;
      for (std::size_t i = start + 1; i + 1 < tok.size(); i += 2)
        pts.emplace_back(num(tok[i], line_no), num(tok[i + 1], line_no));
      if (pts.empty()) fail(line_no, "PWL needs (t v) pairs");
      return SourceWave::pwl(std::move(pts));
    }
    // Bare numeric = DC.
    return SourceWave::dc(num(tok[start], line_no));
  }

  void parse_line(const std::string& line, std::size_t line_no) {
    Tokenizer tz(line);
    const auto& tok = tz.tokens;
    if (tok.empty()) return;
    const char head =
        static_cast<char>(std::toupper(static_cast<unsigned char>(tok[0][0])));

    if (tok[0][0] == '.') {
      const std::string dir = lower(tok[0]);
      if (dir == ".end" || dir == ".ends") return;
      if (dir == ".model") {
        if (tok.size() < 3) fail(line_no, ".model needs name and type");
        MosModel model;
        const std::string type = lower(tok[2]);
        if (type == "nmos")
          model.type = MosType::kNmos;
        else if (type == "pmos")
          model.type = MosType::kPmos;
        else
          fail(line_no, "unknown model type '" + tok[2] + "'");
        for (std::size_t i = 3; i + 2 < tok.size(); ++i) {
          if (tok[i + 1] != "=") continue;
          const std::string key = lower(tok[i]);
          const double val = num(tok[i + 2], line_no);
          if (key == "vt0") model.vt0 = val;
          else if (key == "kp") model.kp = val;
          else if (key == "lambda") model.lambda = val;
          else if (key == "cox") model.cox = val;
          else if (key == "cov") model.cov = val;
          i += 2;
        }
        model_ids_[lower(tok[1])] = circuit_.add_model(model);
        return;
      }
      return;  // ignore other directives (.tran etc. are runner concerns)
    }

    switch (head) {
      case 'R': {
        if (tok.size() < 4) fail(line_no, "R needs 2 nodes and a value");
        circuit_.add_resistor(node(tok[1]), node(tok[2]), num(tok[3], line_no));
        return;
      }
      case 'C': {
        if (tok.size() < 4) fail(line_no, "C needs 2 nodes and a value");
        circuit_.add_capacitor(node(tok[1]), node(tok[2]), num(tok[3], line_no));
        return;
      }
      case 'V': {
        if (tok.size() < 4) fail(line_no, "V needs 2 nodes and a source");
        circuit_.add_vsource(node(tok[1]), node(tok[2]), parse_wave(tok, 3, line_no));
        return;
      }
      case 'I': {
        if (tok.size() < 4) fail(line_no, "I needs 2 nodes and a source");
        // SPICE convention: positive current flows n+ -> n- through the
        // source, i.e. out of n+ into n-.
        circuit_.add_isource(node(tok[1]), node(tok[2]), parse_wave(tok, 3, line_no));
        return;
      }
      case 'M': {
        if (tok.size() < 6) fail(line_no, "M needs 4 nodes and a model");
        PendingMosfet pm;
        pm.line_no = line_no;
        pm.d = node(tok[1]);
        pm.g = node(tok[2]);
        pm.s = node(tok[3]);
        // tok[4] = bulk (ignored), tok[5] = model name.
        pm.model_name = lower(tok[5]);
        for (std::size_t i = 6; i + 2 < tok.size(); ++i) {
          if (tok[i + 1] != "=") continue;
          const std::string key = lower(tok[i]);
          const double val = num(tok[i + 2], line_no);
          if (key == "w") pm.w = val;
          if (key == "l") pm.l = val;
          i += 2;
        }
        pending_mosfets_.push_back(pm);
        return;
      }
      default:
        fail(line_no, "unsupported card '" + tok[0] + "'");
    }
  }

  void resolve_mosfets() {
    for (const auto& pm : pending_mosfets_) {
      const auto it = model_ids_.find(pm.model_name);
      if (it == model_ids_.end())
        fail(pm.line_no, "unknown model '" + pm.model_name + "'");
      circuit_.add_mosfet(pm.d, pm.g, pm.s, it->second, pm.w, pm.l);
    }
  }

  struct PendingMosfet {
    std::size_t line_no = 0;
    int d = 0, g = 0, s = 0;
    std::string model_name;
    double w = 1e-6, l = 0.25e-6;
  };

  const std::string& deck_;
  Circuit circuit_;
  std::map<std::string, int> model_ids_;
  std::vector<PendingMosfet> pending_mosfets_;
};

}  // namespace

Circuit parse_spice_deck(const std::string& deck) {
  return DeckParser(deck).parse();
}

}  // namespace xtv
