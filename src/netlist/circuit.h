// Circuit netlist data model.
//
// A `Circuit` is the common representation consumed by the SPICE-class
// engine (src/spice) and produced by the extractor (src/extract), the cell
// library (src/cells), and the cluster builder (src/core). It is a flat,
// typed element list over integer node ids; node 0 is ground.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace xtv {

/// Time-dependent source waveform: DC level, piecewise-linear samples, or a
/// periodic pulse (SPICE PULSE semantics without the period for one-shot).
class SourceWave {
 public:
  /// Constant value for all t.
  static SourceWave dc(double value);

  /// Piecewise-linear (t, v) samples; clamped to the end values outside the
  /// sample range. Times must be strictly increasing.
  static SourceWave pwl(std::vector<std::pair<double, double>> points);

  /// One-shot pulse: v0 until `delay`, linear rise over `rise` to v1, hold
  /// for `width`, linear fall over `fall` back to v0.
  static SourceWave pulse(double v0, double v1, double delay, double rise,
                          double width, double fall);

  /// A rising or falling full-swing ramp: v0 -> v1 starting at `delay`
  /// with transition time `slew` (straight line).
  static SourceWave ramp(double v0, double v1, double delay, double slew);

  /// Value at time t.
  double value(double t) const;

  /// Largest |dv/dt| anywhere on the waveform (0 for DC); used to pick
  /// default integration steps.
  double max_slope() const;

  /// True if the waveform never changes.
  bool is_dc() const { return points_.size() <= 1; }

  /// The internal PWL breakpoints (size 1 for DC). Exposed for deck export
  /// and for integrators that align time steps with source corners.
  const std::vector<std::pair<double, double>>& breakpoints() const {
    return points_;
  }

 private:
  // Internal representation: PWL points (size 1 == DC).
  std::vector<std::pair<double, double>> points_;
};

/// One-port nonlinear termination (current source looking into a node).
/// Implemented by pre-characterized cell models (src/cells); both the SPICE
/// engine and the reduced-order simulator evaluate the same object, which is
/// what makes model-vs-model accuracy comparisons meaningful.
class OnePortDevice {
 public:
  virtual ~OnePortDevice() = default;

  /// Current flowing *into* the attached node when the node is at voltage
  /// `v` at time `t` (amperes).
  virtual double current(double v, double t) const = 0;

  /// Partial derivative d(current)/dv at (v, t) (siemens, <= 0 for
  /// passive-ish pull networks).
  virtual double conductance(double v, double t) const = 0;
};

struct Resistor {
  int a = 0;
  int b = 0;
  double ohms = 0.0;
};

struct Capacitor {
  int a = 0;
  int b = 0;
  double farads = 0.0;
  bool coupling = false;  ///< true for inter-net coupling capacitors
};

struct VoltageSource {
  int pos = 0;
  int neg = 0;
  SourceWave wave;
};

/// Injects wave.value(t) amperes INTO `into` and out of `from`.
struct CurrentSource {
  int from = 0;
  int into = 0;
  SourceWave wave;
};

enum class MosType { kNmos, kPmos };

/// Level-1 (Shichman–Hodges) MOSFET model card.
struct MosModel {
  MosType type = MosType::kNmos;
  double vt0 = 0.5;        ///< threshold voltage (V); sign-free, applied per type
  double kp = 110e-6;      ///< transconductance parameter (A/V^2)
  double lambda = 0.05;    ///< channel-length modulation (1/V)
  double cox = 5e-3;       ///< gate oxide capacitance per area (F/m^2)
  double cov = 3e-10;      ///< gate-drain/source overlap cap per width (F/m)
  double cj = 1e-3;        ///< junction cap per drain/source area proxy (F/m^2)
};

struct Mosfet {
  int d = 0;
  int g = 0;
  int s = 0;
  int model = 0;   ///< index into Circuit's model table
  double w = 1e-6; ///< channel width (m)
  double l = 0.25e-6; ///< channel length (m)
};

struct NonlinearTermination {
  int node = 0;
  std::shared_ptr<const OnePortDevice> device;
};

/// Flat netlist. Node 0 is ground ("0"). Elements may be appended in any
/// order; the MNA assembler resolves everything by index.
class Circuit {
 public:
  Circuit();

  /// Adds a named node and returns its id. Empty name auto-generates "n<k>".
  int add_node(const std::string& name = "");

  /// Ground node id (always 0).
  static constexpr int ground() { return 0; }

  int node_count() const { return static_cast<int>(node_names_.size()); }
  const std::string& node_name(int id) const { return node_names_.at(static_cast<std::size_t>(id)); }
  /// Finds a node by name; -1 if absent.
  int find_node(const std::string& name) const;

  void add_resistor(int a, int b, double ohms);
  void add_capacitor(int a, int b, double farads, bool coupling = false);
  void add_vsource(int pos, int neg, SourceWave wave);
  void add_isource(int from, int into, SourceWave wave);
  /// Registers a model card; returns its index for add_mosfet.
  int add_model(const MosModel& model);
  void add_mosfet(int d, int g, int s, int model, double w, double l);
  void add_termination(int node, std::shared_ptr<const OnePortDevice> device);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }
  const std::vector<CurrentSource>& isources() const { return isources_; }
  const std::vector<MosModel>& models() const { return models_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  const std::vector<NonlinearTermination>& terminations() const { return terminations_; }

  /// Appends every node and element of `other` into this circuit,
  /// connecting `other`'s node `their_node[i]` to this circuit's node
  /// `my_node[i]` (parallel arrays); all unmapped nodes are imported as
  /// fresh nodes. Returns the node-id translation table (index = other's
  /// node id). Ground always maps to ground.
  std::vector<int> merge(const Circuit& other, const std::vector<int>& their_node,
                         const std::vector<int>& my_node);

 private:
  void check_node(int id) const;

  std::vector<std::string> node_names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
  std::vector<MosModel> models_;
  std::vector<Mosfet> mosfets_;
  std::vector<NonlinearTermination> terminations_;
};

}  // namespace xtv
