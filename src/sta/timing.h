// Switching windows and arrival-time propagation.
//
// The paper uses "timing window and logic/timing correlation information
// ... in pruning and in analysis" (Section 6) to avoid impossible
// aggressor alignments. This module provides the minimal static-timing
// machinery that produces those windows: a DAG of nets with min/max edge
// delays, window propagation from primary inputs, and overlap queries.
#pragma once

#include <cstddef>
#include <vector>

namespace xtv {

/// Earliest/latest time a net can switch within a clock cycle. An invalid
/// window means "never switches" (e.g. a constant net).
struct TimingWindow {
  double start = 0.0;
  double end = 0.0;
  bool valid = false;

  static TimingWindow never() { return {}; }
  static TimingWindow of(double start, double end) { return {start, end, true}; }

  /// True if two windows share any instant (closed intervals).
  bool overlaps(const TimingWindow& other) const {
    return valid && other.valid && start <= other.end && other.start <= end;
  }

  /// Window shifted by [dmin, dmax] (propagation through an edge).
  TimingWindow shifted(double dmin, double dmax) const {
    return valid ? of(start + dmin, end + dmax) : never();
  }

  /// Smallest window containing both (union hull).
  TimingWindow hull(const TimingWindow& other) const;
};

/// Net-level timing DAG: nodes are nets, edges are cell arcs with bounded
/// delay. Windows propagate forward from primary-input assignments.
class TimingGraph {
 public:
  /// Adds a net node; returns its id.
  std::size_t add_net();

  std::size_t net_count() const { return fanin_.size(); }

  /// Adds an arc `from -> to` with delay in [dmin, dmax]. Requires
  /// dmin <= dmax and valid ids; cycles are rejected at propagate() time.
  void add_arc(std::size_t from, std::size_t to, double dmin, double dmax);

  /// Pins a net's window (primary inputs / clock roots).
  void set_window(std::size_t net, TimingWindow window);

  /// Propagates windows in topological order. Nets with no assignment and
  /// no fanin get the never() window. Throws std::runtime_error if the
  /// graph has a cycle.
  void propagate();

  /// Window of a net (after propagate()).
  const TimingWindow& window(std::size_t net) const { return windows_.at(net); }

 private:
  struct Arc {
    std::size_t from;
    double dmin, dmax;
  };
  std::vector<std::vector<Arc>> fanin_;
  std::vector<std::vector<std::size_t>> fanout_;
  std::vector<TimingWindow> windows_;
  std::vector<bool> pinned_;
};

/// Logic correlations between nets (Section 2: "the logic values of
/// flip-flop outputs are normally complementary").
class LogicCorrelation {
 public:
  /// Declares nets a and b complementary (Q/QN): they switch together but
  /// always in opposite directions.
  void add_complementary(std::size_t a, std::size_t b);

  /// Declares a mutually-exclusive group: at most one member switches in a
  /// cycle (one-hot selects, decoded bus enables).
  void add_mutex(std::vector<std::size_t> nets);

  /// Can `a` and `b` both switch in the SAME direction in one cycle?
  bool can_switch_same_direction(std::size_t a, std::size_t b) const;

  /// Can `a` and `b` both switch (any directions) in one cycle?
  bool can_switch_together(std::size_t a, std::size_t b) const;

 private:
  bool complementary(std::size_t a, std::size_t b) const;
  bool mutexed(std::size_t a, std::size_t b) const;

  std::vector<std::pair<std::size_t, std::size_t>> complementary_;
  std::vector<std::vector<std::size_t>> mutex_groups_;
};

}  // namespace xtv
