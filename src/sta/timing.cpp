#include "sta/timing.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace xtv {

TimingWindow TimingWindow::hull(const TimingWindow& other) const {
  if (!valid) return other;
  if (!other.valid) return *this;
  return of(std::min(start, other.start), std::max(end, other.end));
}

std::size_t TimingGraph::add_net() {
  fanin_.emplace_back();
  fanout_.emplace_back();
  windows_.push_back(TimingWindow::never());
  pinned_.push_back(false);
  return fanin_.size() - 1;
}

void TimingGraph::add_arc(std::size_t from, std::size_t to, double dmin,
                          double dmax) {
  if (from >= net_count() || to >= net_count())
    throw std::runtime_error("TimingGraph: bad net id");
  if (dmin > dmax) throw std::runtime_error("TimingGraph: dmin > dmax");
  fanin_[to].push_back({from, dmin, dmax});
  fanout_[from].push_back(to);
}

void TimingGraph::set_window(std::size_t net, TimingWindow window) {
  if (net >= net_count()) throw std::runtime_error("TimingGraph: bad net id");
  windows_[net] = window;
  pinned_[net] = true;
}

void TimingGraph::propagate() {
  const std::size_t n = net_count();
  // Kahn topological order.
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t v = 0; v < n; ++v) indeg[v] = fanin_[v].size();
  std::queue<std::size_t> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push(v);

  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.front();
    ready.pop();
    ++visited;
    if (!pinned_[v]) {
      TimingWindow w = TimingWindow::never();
      for (const Arc& arc : fanin_[v])
        w = w.hull(windows_[arc.from].shifted(arc.dmin, arc.dmax));
      windows_[v] = w;
    }
    for (std::size_t to : fanout_[v])
      if (--indeg[to] == 0) ready.push(to);
  }
  if (visited != n)
    throw std::runtime_error("TimingGraph: cycle detected");
}

void LogicCorrelation::add_complementary(std::size_t a, std::size_t b) {
  complementary_.emplace_back(a, b);
}

void LogicCorrelation::add_mutex(std::vector<std::size_t> nets) {
  mutex_groups_.push_back(std::move(nets));
}

bool LogicCorrelation::complementary(std::size_t a, std::size_t b) const {
  for (const auto& [x, y] : complementary_)
    if ((x == a && y == b) || (x == b && y == a)) return true;
  return false;
}

bool LogicCorrelation::mutexed(std::size_t a, std::size_t b) const {
  if (a == b) return false;
  for (const auto& group : mutex_groups_) {
    const bool has_a = std::find(group.begin(), group.end(), a) != group.end();
    const bool has_b = std::find(group.begin(), group.end(), b) != group.end();
    if (has_a && has_b) return true;
  }
  return false;
}

bool LogicCorrelation::can_switch_same_direction(std::size_t a, std::size_t b) const {
  if (complementary(a, b)) return false;
  return can_switch_together(a, b);
}

bool LogicCorrelation::can_switch_together(std::size_t a, std::size_t b) const {
  return !mutexed(a, b);
}

}  // namespace xtv
