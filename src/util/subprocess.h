// Worker-process plumbing for the process-isolated shard executor
// (core/shard_exec.h, DESIGN.md §12): pipe creation, child exit
// classification, and worker-side signal hygiene.
//
// The signal story is the part that earns its own module. A worker that
// dies on SIGSEGV/SIGBUS/SIGFPE must tell the supervisor *which victim*
// it was analyzing, or the supervisor has to guess from the last streamed
// record. The crash-marker handler is therefore async-signal-safe by
// construction: it formats "xtvjc <victim> <signal>\n" with hand-rolled
// integer printing (no snprintf, no malloc, no stdio) and write(2)s it to
// a pre-registered journal fd before re-raising the signal with its
// default disposition — so waitpid still reports the truthful WTERMSIG.
// Under ASan/TSan the handler is not installed (the sanitizers own those
// signals and their reports are more valuable than our one-liner); the
// supervisor then attributes the crash from the last streamed
// victim-start record instead.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>

namespace xtv {
namespace subprocess {

/// A unidirectional pipe; both fds are close-on-exec. Throws
/// NumericalError(kInternal) when the kernel refuses.
struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
};
Pipe make_pipe();

/// Marks `fd` O_NONBLOCK (the supervisor's poll-driven reads).
void set_nonblocking(int fd);

/// Workers write findings into a pipe the supervisor may have abandoned
/// (it SIGKILLs stalled shards); a SIGPIPE-terminated worker would be
/// indistinguishable from a real crash, so workers ignore the signal and
/// handle the EPIPE write error instead.
void ignore_sigpipe();

/// Classified waitpid(2) result.
struct ExitStatus {
  bool exited = false;    ///< WIFEXITED
  int code = 0;           ///< WEXITSTATUS when exited
  bool signaled = false;  ///< WIFSIGNALED
  int sig = 0;            ///< WTERMSIG when signaled
  bool clean() const { return exited && code == 0; }
  std::string describe() const;
};

/// Blocking waitpid (EINTR-retrying). Returns false if `pid` is not a
/// waitable child.
bool wait_for(pid_t pid, ExitStatus* status);

/// Non-blocking waitpid (WNOHANG, EINTR-retrying): true when `pid` was
/// reaped into `status`, false while it is still running (or is not a
/// waitable child). The serve daemon supervises its job runners this way
/// — pipe EOF alone is unreliable, because a runner's forked shard
/// workers inherit the pipe's write end and keep it open past the
/// runner's own death.
bool try_wait(pid_t pid, ExitStatus* status);

// --- Crash markers (worker side) ---

/// First token of a crash-marker line in a shard journal:
///   xtvjc <victim net id> <signal number>\n
inline constexpr const char* kCrashMarkerMagic = "xtvjc";

/// Sentinel for "no victim currently in flight".
inline constexpr std::uint64_t kNoCrashVictim = ~std::uint64_t{0};

/// Async-signal-safe: writes one crash-marker line to `fd`. Exposed so
/// tests can exercise the exact formatting without taking a real signal.
void write_crash_marker(int fd, std::uint64_t victim, int sig);

/// Installs the SIGSEGV/SIGBUS/SIGFPE crash-marker handler writing to
/// `fd` (pass -1 to mark "no journal": the handler then only re-raises).
/// No-op when crash_marker_handlers_enabled() is false.
void install_crash_marker_handler(int fd);

/// False under ASan/TSan builds, where the sanitizer owns fatal signals.
bool crash_marker_handlers_enabled();

/// Publishes the victim the calling worker is about to analyze (read by
/// the crash handler); pass kNoCrashVictim between victims.
void set_crash_marker_victim(std::uint64_t victim);

}  // namespace subprocess
}  // namespace xtv
