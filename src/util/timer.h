// Wall-clock timing for the speed-up measurements quoted in the paper
// (MPVL vs SPICE CPU-time ratios in Sections 5), plus a per-thread CPU
// stopwatch for honest compute accounting under oversubscribed workers.
#pragma once

#include <chrono>
#include <ctime>

namespace xtv {

/// Monotonic stopwatch. Constructed running; elapsed() may be read any
/// number of times; restart() resets the origin.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Resets the stopwatch origin to now.
  void restart() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// CPU-time stopwatch for the *calling thread*: counts only time this
/// thread actually executed, so concurrent victims timesharing a core
/// don't each bill the same second (a wall timer would). Summed across
/// workers this gives the true compute cost of a parallel sweep. Must be
/// read on the thread that constructed it.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  /// CPU seconds this thread consumed since construction.
  double elapsed() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
      return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
#endif
    // Portable fallback: process CPU time (over-counts under concurrency,
    // but never regresses to wall time).
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double start_;
};

}  // namespace xtv
