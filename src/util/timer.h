// Wall-clock timing for the speed-up measurements quoted in the paper
// (MPVL vs SPICE CPU-time ratios in Sections 5).
#pragma once

#include <chrono>

namespace xtv {

/// Monotonic stopwatch. Constructed running; elapsed() may be read any
/// number of times; restart() resets the origin.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Resets the stopwatch origin to now.
  void restart() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace xtv
