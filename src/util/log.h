// Minimal leveled logging to stderr.
//
// The verification flow runs over thousands of clusters; log output is
// opt-in per level so test and bench output stays clean by default.
#pragma once

#include <string>

namespace xtv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that will be emitted (default kWarn).
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Emits `msg` to stderr with a level prefix if `level` >= the global
/// threshold.
void log(LogLevel level, const std::string& msg);

/// printf-style convenience wrappers.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace xtv
