#include "util/workspace.h"

#include <algorithm>
#include <utility>

namespace xtv::workspace {

namespace {

struct AtomicStats {
  std::atomic<std::size_t> acquires{0};
  std::atomic<std::size_t> pool_hits{0};
  std::atomic<std::size_t> pool_misses{0};
  std::atomic<std::size_t> releases{0};
  std::atomic<std::size_t> dropped{0};
  std::atomic<std::size_t> reused_bytes{0};
};

AtomicStats& global_stats() {
  static AtomicStats stats;
  return stats;
}

thread_local Workspace* t_scope_workspace = nullptr;

}  // namespace

Workspace& Workspace::local() {
  if (t_scope_workspace) return *t_scope_workspace;
  thread_local Workspace arena;
  return arena;
}

Workspace::Scope::Scope() : prev_(t_scope_workspace) {
  t_scope_workspace = &workspace_;
}

Workspace::Scope::~Scope() { t_scope_workspace = prev_; }

void Workspace::acquire(std::vector<double>& out, std::size_t n) {
  auto& stats = global_stats();
  stats.acquires.fetch_add(1, std::memory_order_relaxed);
  // Best fit: the smallest pooled buffer whose capacity covers n. Anything
  // bigger would strand capacity; anything smaller would reallocate inside
  // assign() and defeat the pool.
  std::size_t best = pool_.size();
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i].capacity() < n) continue;
    if (best == pool_.size() || pool_[i].capacity() < pool_[best].capacity())
      best = i;
  }
  if (best < pool_.size()) {
    pooled_bytes_ -= pool_[best].capacity() * sizeof(double);
    out = std::move(pool_[best]);
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(best));
    stats.pool_hits.fetch_add(1, std::memory_order_relaxed);
    stats.reused_bytes.fetch_add(n * sizeof(double), std::memory_order_relaxed);
  } else {
    stats.pool_misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Zero-fill the requested extent: recycled capacity must never leak one
  // victim's values into the next.
  out.assign(n, 0.0);
}

void Workspace::release(std::vector<double>& buf) {
  const std::size_t bytes = buf.capacity() * sizeof(double);
  if (bytes == 0) return;
  auto& stats = global_stats();
  stats.releases.fetch_add(1, std::memory_order_relaxed);
  if (bytes > kMaxBufferBytes || pool_.size() >= kMaxBuffers ||
      pooled_bytes_ + bytes > kMaxPooledBytes) {
    stats.dropped.fetch_add(1, std::memory_order_relaxed);
    std::vector<double>().swap(buf);
    return;
  }
  buf.clear();
  pooled_bytes_ += bytes;
  pool_.push_back(std::move(buf));
  buf = std::vector<double>();
}

void Workspace::clear() {
  pool_.clear();
  pooled_bytes_ = 0;
}

void acquire(std::vector<double>& out, std::size_t n) {
  Workspace::local().acquire(out, n);
}

void release(std::vector<double>& buf) { Workspace::local().release(buf); }

Stats stats() {
  const auto& g = global_stats();
  Stats s;
  s.acquires = g.acquires.load(std::memory_order_relaxed);
  s.pool_hits = g.pool_hits.load(std::memory_order_relaxed);
  s.pool_misses = g.pool_misses.load(std::memory_order_relaxed);
  s.releases = g.releases.load(std::memory_order_relaxed);
  s.dropped = g.dropped.load(std::memory_order_relaxed);
  s.reused_bytes = g.reused_bytes.load(std::memory_order_relaxed);
  return s;
}

void reset_stats() {
  auto& g = global_stats();
  g.acquires.store(0, std::memory_order_relaxed);
  g.pool_hits.store(0, std::memory_order_relaxed);
  g.pool_misses.store(0, std::memory_order_relaxed);
  g.releases.store(0, std::memory_order_relaxed);
  g.dropped.store(0, std::memory_order_relaxed);
  g.reused_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace xtv::workspace
