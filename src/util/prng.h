// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (synthetic chip generation, test-case
// sweeps) must be exactly reproducible across runs and platforms, so we use
// our own small PCG-style generator instead of std::mt19937 + distributions
// (whose results are implementation-defined for floating point).
#pragma once

#include <cstdint>
#include <vector>

namespace xtv {

/// PCG32 generator (O'Neill's pcg32_oneseq variant): 64-bit state, 32-bit
/// output, period 2^64. Small, fast, and statistically solid for workload
/// generation purposes.
class Prng {
 public:
  /// Seeds the generator; two Prng objects with equal seeds produce
  /// identical streams.
  explicit Prng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-seeds in place, restarting the stream.
  void reseed(std::uint64_t seed);

  /// Next raw 32-bit value.
  std::uint32_t next_u32();

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal variate (Box–Muller, deterministic pairing).
  double normal();

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-uniform sample in [lo, hi]; lo, hi must be positive.
  double log_uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_ = 0;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace xtv
