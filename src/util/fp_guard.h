// Scoped floating-point exception trapping for the numerical kernels.
//
// A NaN born inside Cholesky, Lanczos, or a Newton solve can propagate
// silently through thousands of downstream operations before (maybe)
// tripping an after-the-fact waveform-finite check — by which point the
// offending kernel is long gone from the stack. FpKernelGuard instead
// samples the hardware's accrued-exception flags (fetestexcept) at the
// boundaries of each kernel: the constructor clears FE_INVALID|FE_OVERFLOW,
// the kernel runs, and check() raises a typed NumericalError naming the
// kernel if either flag accrued. Only invalid and overflow are trapped —
// underflow and inexact are normal in well-conditioned RC arithmetic.
//
// Iterative solvers that legitimately overflow on diverging iterates and
// then recover via damping call rearm() at the top of each iteration and
// check() only on the converged path, so a transient excursion never
// condemns a successful solve.
#pragma once

#include <cfenv>
#include <string>

#include "util/fault_injection.h"
#include "util/status.h"

namespace xtv {

class FpKernelGuard {
 public:
  /// Flags treated as errors. Divide-by-zero folds into the same policy as
  /// overflow (an RC network never legitimately divides by zero; when it
  /// happens the Inf becomes NaN within a few ops anyway).
  static constexpr int kTrapped = FE_INVALID | FE_OVERFLOW | FE_DIVBYZERO;

  explicit FpKernelGuard(const char* kernel) : kernel_(kernel) {
    std::feclearexcept(kTrapped);
  }

  /// Clears accrued flags; iterative solvers call this per iteration so a
  /// recovered excursion leaves no stale evidence.
  void rearm() const { std::feclearexcept(kTrapped); }

  /// Raises kFpException naming the kernel if a trapped flag accrued since
  /// construction/rearm(). Also the injection point for FaultSite::kFpTrap.
  void check() const {
    const int raised = std::fetestexcept(kTrapped);
    if (raised == 0 && !XTV_INJECT_FAULT(FaultSite::kFpTrap)) return;
    std::string what(kernel_);
    what += ": floating-point exception (";
    if (raised & FE_INVALID) what += "invalid ";
    if (raised & FE_OVERFLOW) what += "overflow ";
    if (raised & FE_DIVBYZERO) what += "div-by-zero ";
    if (raised == 0) what += "injected ";
    what.back() = ')';
    std::feclearexcept(kTrapped);  // don't double-report in an outer guard
    throw NumericalError(StatusCode::kFpException, what);
  }

 private:
  const char* kernel_;
};

}  // namespace xtv
