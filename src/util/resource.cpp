#include "util/resource.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "util/status.h"

namespace xtv::resource {

namespace {

thread_local ClusterScope* t_current_scope = nullptr;

std::string mb_string(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f MiB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

std::size_t read_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long vm_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::size_t>(rss_pages) * static_cast<std::size_t>(page);
}

ClusterScope::ClusterScope(std::size_t limit_bytes, const char* label)
    : limit_(limit_bytes), label_(label), prev_(t_current_scope) {
  t_current_scope = this;
  MemoryGovernor::instance().add_scope(this);
}

ClusterScope::~ClusterScope() {
  MemoryGovernor::instance().remove_scope(this);
  // A parked scope (batch scheduling) may be destroyed while some other
  // scope — or none — is installed on this thread; only unwind the
  // thread-local binding when it is actually ours.
  if (t_current_scope == this) t_current_scope = prev_;
}

ClusterScope* ClusterScope::current() { return t_current_scope; }

ClusterScope* ClusterScope::exchange_current(ClusterScope* scope) {
  ClusterScope* prev = t_current_scope;
  t_current_scope = scope;
  return prev;
}

ClusterScope::Activation::Activation(ClusterScope* scope)
    : saved_(t_current_scope) {
  t_current_scope = scope;
}

ClusterScope::Activation::~Activation() { t_current_scope = saved_; }

void ClusterScope::charge(std::size_t bytes) {
  const std::size_t now =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t seen = peak_.load(std::memory_order_relaxed);
  while (now > seen &&
         !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
  if (limit_ > 0 && now > limit_ && !exempt()) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    throw NumericalError(
        StatusCode::kResourceExceeded,
        std::string(label_) + ": memory budget exceeded (requested " +
            mb_string(bytes) + " on top of " + mb_string(now - bytes) +
            ", limit " + mb_string(limit_) + ")");
  }
}

void ClusterScope::release(std::size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

ClusterScope::Exemption::Exemption() : scope_(t_current_scope) {
  if (scope_) ++scope_->exempt_depth_;
}

ClusterScope::Exemption::~Exemption() {
  if (scope_) --scope_->exempt_depth_;
}

ClusterScope::Suspension::Suspension() : saved_(t_current_scope) {
  t_current_scope = nullptr;
}

ClusterScope::Suspension::~Suspension() { t_current_scope = saved_; }

MemCharge::MemCharge(std::size_t bytes) {
  ClusterScope* scope = t_current_scope;
  if (!scope || bytes == 0) return;
  scope->charge(bytes);  // throws before we record anything on breach
  scope_ = scope;
  bytes_ = bytes;
}

void MemCharge::reset() {
  if (scope_) scope_->release(bytes_);
  scope_ = nullptr;
  bytes_ = 0;
}

ScopedCharge::~ScopedCharge() {
  if (scope_) scope_->release(total_);
}

void ScopedCharge::add(std::size_t bytes) {
  if (bytes == 0) return;
  if (!scope_) {
    scope_ = t_current_scope;
    if (!scope_) return;
  }
  scope_->charge(bytes);
  total_ += bytes;
}

void ScopedCharge::shrink(std::size_t bytes) {
  if (!scope_ || bytes == 0) return;
  const std::size_t give_back = std::min(bytes, total_);
  scope_->release(give_back);
  total_ -= give_back;
}

MemoryGovernor& MemoryGovernor::instance() {
  static MemoryGovernor governor;
  return governor;
}

std::size_t MemoryGovernor::scoped_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const ClusterScope* scope : scopes_) total += scope->used();
  return total;
}

std::size_t MemoryGovernor::scope_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scopes_.size();
}

void MemoryGovernor::add_scope(ClusterScope* scope) {
  std::lock_guard<std::mutex> lock(mutex_);
  scopes_.push_back(scope);
}

void MemoryGovernor::remove_scope(ClusterScope* scope) {
  std::lock_guard<std::mutex> lock(mutex_);
  scopes_.erase(std::remove(scopes_.begin(), scopes_.end(), scope),
                scopes_.end());
}

RssWatchdog::RssWatchdog(std::size_t soft_limit_bytes,
                         unsigned poll_interval_ms) {
  if (soft_limit_bytes == 0 || read_rss_bytes() == 0) return;
  thread_ = std::thread(
      [this, soft_limit_bytes, poll_interval_ms] {
        run(soft_limit_bytes, poll_interval_ms);
      });
}

RssWatchdog::~RssWatchdog() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  MemoryGovernor::instance().set_watchdog_pressure(false);
}

void RssWatchdog::run(std::size_t soft_limit_bytes, unsigned poll_interval_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    const std::size_t rss = read_rss_bytes();
    MemoryGovernor::instance().set_watchdog_pressure(rss >= soft_limit_bytes);
    cv_.wait_for(lock, std::chrono::milliseconds(poll_interval_ms),
                 [this] { return stop_; });
  }
}

}  // namespace xtv::resource
