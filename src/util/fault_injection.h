// Deterministic fault injection for exercising the recovery ladder.
//
// Each numerical failure class in the pipeline has an instrumented site
// (XTV_INJECT_FAULT at the top of the factorization/sweep/solve) that asks
// the process-wide FaultInjector whether to force that failure now. Sites
// are counter-keyed: arming a site with period N fires on every N-th hit
// (optionally capped at max_fires), so tests can force, say, a Newton
// breakdown on exactly the third cluster analyzed — every rung of the
// verifier's retry/degradation ladder becomes reachable on demand.
//
// When the verifier binds a ScopedVictim, decisions switch from the
// global arrival order to a per-(site, victim) hit index mixed with the
// victim net id — the same victims are disturbed whether the run uses one
// worker thread or sixteen, so parallel chaos runs stay reproducible.
//
// Release-path cost: when nothing is armed (the production state) a site
// is one relaxed atomic-bool load. Defining XTV_DISABLE_FAULT_INJECTION
// compiles the hooks out entirely.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace xtv {

/// Instrumented failure sites, one per forcible failure class.
enum class FaultSite : int {
  kCholeskyFactor = 0,  ///< linalg: Cholesky factorization breakdown
  kDenseLuFactor,       ///< linalg: dense LU singular pivot
  kSparseLuFactor,      ///< linalg: sparse LU singular pivot
  kLanczosSweep,        ///< mor: SyMPVL Krylov sweep breakdown
  kPassivityCheck,      ///< mor: reduced T fails the PSD/passivity check
  kReducedNewton,       ///< mor: reduced-model transient Newton divergence
  kSpiceNewton,         ///< spice: full-circuit Newton divergence
  kWaveformFinite,      ///< analyzers: NaN/Inf waveform detection
  kFpTrap,              ///< util: FpKernelGuard check (forced FP exception)
  kVictimTask,          ///< core: verifier worker task outside the ladder
  kCertifyProbe,        ///< mor: a-posteriori certificate probe solve failure
  kRemoteSend,          ///< serve: coordinator->worker frame write failure
  kRemoteRecv,          ///< serve: worker->coordinator frame read failure
  kLeaseExpiry,         ///< serve: force a held lease to expire immediately
  kBatchLane,           ///< mor: batch lane poisoned -> scalar re-run
  kCount,               ///< number of sites (not a site)
};

const char* fault_site_name(FaultSite site);

class FaultInjector {
 public:
  /// Process-wide instance used by every instrumented site.
  static FaultInjector& instance();

  /// Sentinel for "no victim context on this thread".
  static constexpr std::uint64_t kNoVictim = ~std::uint64_t{0};

  /// Binds the enclosing victim net id to this thread while alive, making
  /// injection decisions a pure function of (site, victim, per-victim hit
  /// index) instead of the global arrival order — so a run with
  /// --threads 8 disturbs exactly the same victims as a serial run.
  class ScopedVictim {
   public:
    explicit ScopedVictim(std::uint64_t victim_net);
    ~ScopedVictim();
    ScopedVictim(const ScopedVictim&) = delete;
    ScopedVictim& operator=(const ScopedVictim&) = delete;

   private:
    std::uint64_t prev_;
  };

  /// Arms `site`: starting from the next hit, every `period`-th hit fires
  /// (period 1 = every hit). `max_fires` caps the total number of forced
  /// failures (0 = unlimited). Re-arming resets the site's counters.
  void arm(FaultSite site, std::uint64_t period = 1, std::uint64_t max_fires = 0);

  /// Disarms one site (its hit/fire counts are kept until reset()).
  void disarm(FaultSite site);

  /// Disarms every site and zeroes all counters.
  void reset();

  /// Hits observed at `site` since it was last armed (sites are only
  /// counted while armed, so arming is the deterministic time origin).
  std::uint64_t hits(FaultSite site) const;

  /// Failures forced at `site` since it was last armed.
  std::uint64_t fires(FaultSite site) const;

  /// Called by the instrumented site: returns true when this hit must
  /// fail. Fast path (nothing armed anywhere) is one relaxed atomic load.
  bool should_fail(FaultSite site) {
    if (!any_armed_.load(std::memory_order_relaxed)) return false;
    return should_fail_slow(site);
  }

 private:
  FaultInjector() = default;
  bool should_fail_slow(FaultSite site);

  struct VictimState {
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  struct SiteState {
    bool armed = false;
    std::uint64_t period = 1;
    std::uint64_t max_fires = 0;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    /// Per-victim counters used when a ScopedVictim is bound: decisions
    /// are keyed on (victim, per-victim hit index), independent of the
    /// interleaving of other victims' hits.
    std::unordered_map<std::uint64_t, VictimState> by_victim;
  };

  mutable std::mutex mutex_;
  std::atomic<bool> any_armed_{false};
  std::array<SiteState, static_cast<std::size_t>(FaultSite::kCount)> sites_{};
};

}  // namespace xtv

#if defined(XTV_DISABLE_FAULT_INJECTION)
#define XTV_INJECT_FAULT(site) false
#else
#define XTV_INJECT_FAULT(site) (::xtv::FaultInjector::instance().should_fail(site))
#endif
