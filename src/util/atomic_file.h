// Atomic small-file writes for control files (endpoint files, pid files,
// job specs, done markers).
//
// A control file read by another process — daemon.tcp, daemon.pid, a job
// runner's .pid, a worker's published endpoint — must never be observed
// torn: a reader racing a writer that was SIGKILLed mid-write() would see
// a prefix and act on garbage (half a port number, a truncated pid). The
// only portable way to make "the file exists" imply "the file is whole"
// is the journal's own recipe: write to a sibling tmp file, fsync it,
// rename() over the target, fsync the parent directory. rename() is
// atomic on POSIX filesystems, so readers see either the old file or the
// complete new one — never a mix.
#pragma once

#include <string>

namespace xtv {

/// Atomically replaces `path` with `content` (tmp + fsync + rename +
/// parent-dir fsync). On failure the tmp file is removed and `error`
/// (when non-null) describes the failing step; `path` is untouched.
bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error = nullptr);

/// fsyncs the directory containing `path` so a completed rename() is
/// durable across power loss (mirrors ResultJournal::write_atomic).
void fsync_parent_dir(const std::string& path);

}  // namespace xtv
