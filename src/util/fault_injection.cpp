#include "util/fault_injection.h"

namespace xtv {

namespace {

thread_local std::uint64_t t_victim_net = FaultInjector::kNoVictim;

// splitmix64 finalizer: decorrelates adjacent net ids so periodic
// injection does not systematically hit (say) every even-numbered net.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::ScopedVictim::ScopedVictim(std::uint64_t victim_net)
    : prev_(t_victim_net) {
  t_victim_net = victim_net;
}

FaultInjector::ScopedVictim::~ScopedVictim() { t_victim_net = prev_; }

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kCholeskyFactor: return "cholesky-factor";
    case FaultSite::kDenseLuFactor: return "dense-lu-factor";
    case FaultSite::kSparseLuFactor: return "sparse-lu-factor";
    case FaultSite::kLanczosSweep: return "lanczos-sweep";
    case FaultSite::kPassivityCheck: return "passivity-check";
    case FaultSite::kReducedNewton: return "reduced-newton";
    case FaultSite::kSpiceNewton: return "spice-newton";
    case FaultSite::kWaveformFinite: return "waveform-finite";
    case FaultSite::kFpTrap: return "fp-trap";
    case FaultSite::kVictimTask: return "victim-task";
    case FaultSite::kCertifyProbe: return "certify-probe";
    case FaultSite::kRemoteSend: return "remote-send";
    case FaultSite::kRemoteRecv: return "remote-recv";
    case FaultSite::kLeaseExpiry: return "lease-expiry";
    case FaultSite::kBatchLane: return "batch-lane";
    case FaultSite::kCount: break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultSite site, std::uint64_t period,
                        std::uint64_t max_fires) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& s = sites_.at(static_cast<std::size_t>(site));
  s.armed = true;
  s.period = period > 0 ? period : 1;
  s.max_fires = max_fires;
  s.hits = 0;
  s.fires = 0;
  s.by_victim.clear();
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.at(static_cast<std::size_t>(site)).armed = false;
  bool any = false;
  for (const SiteState& s : sites_) any = any || s.armed;
  any_armed_.store(any, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (SiteState& s : sites_) s = SiteState{};
  any_armed_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::hits(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_.at(static_cast<std::size_t>(site)).hits;
}

std::uint64_t FaultInjector::fires(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_.at(static_cast<std::size_t>(site)).fires;
}

bool FaultInjector::should_fail_slow(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& s = sites_.at(static_cast<std::size_t>(site));
  if (!s.armed) return false;
  ++s.hits;
  if (t_victim_net != kNoVictim) {
    // Victim-keyed mode: the decision depends only on which victim this
    // is and how many times *this victim* has hit the site, never on how
    // other victims' hits interleave — thread-count independent.
    VictimState& v = s.by_victim[t_victim_net];
    ++v.hits;
    if (s.max_fires > 0 && v.fires >= s.max_fires) return false;
    const std::uint64_t phase =
        mix64(t_victim_net ^ (static_cast<std::uint64_t>(site) << 56));
    if ((phase + v.hits) % s.period != 0) return false;
    ++v.fires;
    ++s.fires;
    return true;
  }
  if (s.max_fires > 0 && s.fires >= s.max_fires) return false;
  if (s.hits % s.period != 0) return false;
  ++s.fires;
  return true;
}

}  // namespace xtv
