#include "util/fault_injection.h"

namespace xtv {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kCholeskyFactor: return "cholesky-factor";
    case FaultSite::kDenseLuFactor: return "dense-lu-factor";
    case FaultSite::kSparseLuFactor: return "sparse-lu-factor";
    case FaultSite::kLanczosSweep: return "lanczos-sweep";
    case FaultSite::kPassivityCheck: return "passivity-check";
    case FaultSite::kReducedNewton: return "reduced-newton";
    case FaultSite::kSpiceNewton: return "spice-newton";
    case FaultSite::kWaveformFinite: return "waveform-finite";
    case FaultSite::kCount: break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultSite site, std::uint64_t period,
                        std::uint64_t max_fires) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& s = sites_.at(static_cast<std::size_t>(site));
  s.armed = true;
  s.period = period > 0 ? period : 1;
  s.max_fires = max_fires;
  s.hits = 0;
  s.fires = 0;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.at(static_cast<std::size_t>(site)).armed = false;
  bool any = false;
  for (const SiteState& s : sites_) any = any || s.armed;
  any_armed_.store(any, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (SiteState& s : sites_) s = SiteState{};
  any_armed_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::hits(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_.at(static_cast<std::size_t>(site)).hits;
}

std::uint64_t FaultInjector::fires(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_.at(static_cast<std::size_t>(site)).fires;
}

bool FaultInjector::should_fail_slow(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& s = sites_.at(static_cast<std::size_t>(site));
  if (!s.armed) return false;
  ++s.hits;
  if (s.max_fires > 0 && s.fires >= s.max_fires) return false;
  if (s.hits % s.period != 0) return false;
  ++s.fires;
  return true;
}

}  // namespace xtv
