// ASCII table rendering for benchmark output.
//
// Every bench binary reproduces one of the paper's tables/figures and prints
// it in a stable, diff-friendly plain-text format via this helper.
#pragma once

#include <string>
#include <vector>

namespace xtv {

/// Simple column-aligned ASCII table. Cells are strings; numeric helpers
/// format with fixed precision. Rendering pads every column to its widest
/// cell and draws a header separator.
class AsciiTable {
 public:
  /// Sets the header row (also fixes the column count).
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` digits after the decimal point.
  static std::string num(double v, int precision = 3);
  /// Formats a double in engineering style with an SI-ish suffix given a
  /// scale factor (e.g. num_scaled(t, 1e-9, "ns")).
  static std::string num_scaled(double v, double scale, const std::string& suffix,
                                int precision = 3);

  /// Renders the table to a string (trailing newline included).
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xtv
