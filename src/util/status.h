// Typed failure reporting for the analysis pipeline.
//
// Chip-level verification sweeps tens of thousands of victim clusters; a
// single ill-conditioned cluster must not abort the run. Numerical
// breakdowns deep in the linalg/MOR/SPICE stack are therefore raised as
// NumericalError — a std::runtime_error subclass carrying a StatusCode —
// so callers can tell a recoverable numerical condition (retry with a
// smaller step, a higher reduced order, or a fallback engine) from a
// programming error, while existing catch(std::runtime_error) sites keep
// working unchanged. Status / AnalysisOutcome<T> are the value-style
// counterparts for APIs that prefer returning failures to throwing them.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace xtv {

/// Failure classes of the numerical pipeline. Everything except kOk,
/// kInvalidInput, and kInternal is a candidate for the verifier's
/// retry/degradation ladder.
enum class StatusCode {
  kOk = 0,
  kCholeskyBreakdown,  ///< G not SPD during Cholesky factorization
  kSingularMatrix,     ///< dense/sparse LU hit a zero (or tiny) pivot
  kLanczosBreakdown,   ///< SyMPVL produced no usable Krylov basis
  kNotPassive,         ///< reduced T has a genuinely negative eigenvalue
  kNewtonDivergence,   ///< DC or transient Newton failed to converge
  kNonFiniteWaveform,  ///< NaN/Inf detected in a simulated waveform
  kFpException,        ///< FP invalid/overflow trapped inside a kernel
  kStepSizeCollapse,   ///< step rejection halved dt below the retry budget
  kDeadlineExceeded,   ///< cluster wall-clock budget exhausted (cooperative)
  kResourceExceeded,   ///< cluster memory budget exhausted (accounted)
  kInvalidInput,       ///< malformed caller input; retrying cannot help
  kInternal,           ///< unclassified failure
  kNoConvergence,      ///< iterative kernel hit its hard iteration cap
  kCertificationFailed,  ///< reduced model failed its accuracy certificate
  kWorkerCrashed,      ///< shard worker process died (signal/exit/stall)
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kCholeskyBreakdown: return "cholesky-breakdown";
    case StatusCode::kSingularMatrix: return "singular-matrix";
    case StatusCode::kLanczosBreakdown: return "lanczos-breakdown";
    case StatusCode::kNotPassive: return "not-passive";
    case StatusCode::kNewtonDivergence: return "newton-divergence";
    case StatusCode::kNonFiniteWaveform: return "non-finite-waveform";
    case StatusCode::kFpException: return "fp-exception";
    case StatusCode::kStepSizeCollapse: return "step-size-collapse";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kResourceExceeded: return "resource-exceeded";
    case StatusCode::kInvalidInput: return "invalid-input";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kNoConvergence: return "no-convergence";
    case StatusCode::kCertificationFailed: return "certification-failed";
    case StatusCode::kWorkerCrashed: return "worker-crashed";
  }
  return "unknown";
}

/// Value-style operation result: a code plus a human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "ok";
    std::string out = status_code_name(code_);
    if (!message_.empty()) out += ": " + message_;
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Typed exception for numerical failures. Derives from runtime_error so
/// pre-existing catch sites (and EXPECT_THROW(std::runtime_error) tests)
/// are unaffected; new code catches NumericalError to drive recovery.
class NumericalError : public std::runtime_error {
 public:
  NumericalError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  StatusCode code() const { return code_; }
  Status status() const { return Status(code_, what()); }

 private:
  StatusCode code_;
};

/// Either a value or the Status explaining why there is none — a minimal
/// expected<T, Status> for analysis entry points that must not throw.
template <typename T>
class AnalysisOutcome {
 public:
  AnalysisOutcome(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)), has_value_(true) {}
  AnalysisOutcome(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return has_value_; }
  explicit operator bool() const { return has_value_; }

  const Status& status() const { return status_; }

  const T& value() const& {
    if (!has_value_)
      throw std::logic_error("AnalysisOutcome: value() on failed outcome (" +
                             status_.to_string() + ")");
    return value_;
  }
  T& value() & {
    if (!has_value_)
      throw std::logic_error("AnalysisOutcome: value() on failed outcome (" +
                             status_.to_string() + ")");
    return value_;
  }

  /// Runs `fn()` (returning T), converting NumericalError — and any other
  /// std::exception — into a failed outcome instead of propagating.
  template <typename Fn>
  static AnalysisOutcome capture(Fn&& fn) {
    try {
      return AnalysisOutcome(fn());
    } catch (const NumericalError& e) {
      return AnalysisOutcome(e.status());
    } catch (const std::exception& e) {
      return AnalysisOutcome(Status(StatusCode::kInternal, e.what()));
    }
  }

 private:
  T value_{};
  Status status_;
  bool has_value_ = false;
};

}  // namespace xtv
