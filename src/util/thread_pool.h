// Fixed-size worker pool for sharding independent cluster analyses.
//
// The verifier's unit of work is one victim cluster — embarrassingly
// parallel, compute-bound, no shared mutable state beyond the (mutexed)
// cell-model cache and the thread-safe FaultInjector. A plain
// mutex/condvar task queue is therefore enough: tasks are coarse
// (milliseconds to seconds each), so queue overhead is irrelevant and
// work stealing would buy nothing.
//
// Tasks must not throw; a task that does anyway has its first exception
// captured and rethrown from wait_idle(), so bugs surface instead of
// vanishing on a worker thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xtv {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception any task leaked (the pool stays usable afterwards).
  void wait_idle();

  /// Runs fn(0) .. fn(count - 1) across the pool and waits. Indices are
  /// claimed in order from a shared counter, so early indices start
  /// first; completion order is unspecified. A throwing fn(i) does not
  /// prevent the remaining indices from running; the first exception is
  /// rethrown after every index has executed.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace xtv
