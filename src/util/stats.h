// Summary statistics and histograms for accuracy audits.
//
// The paper reports error distributions (Tables 3/4, Figures 3/6/7) as
// avg/std/min/max summaries and percentage-error histograms; these helpers
// compute and render those.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xtv {

/// Streaming summary of a sample set: count, mean, standard deviation
/// (population, like the paper's tables), min, max.
class SummaryStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Adds every element of a sample vector.
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Population standard deviation (sqrt(E[x^2] - E[x]^2), guarded >= 0).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// "avg=.. std=.. min=.. max=.." one-line rendering with the given format
  /// precision (digits after the decimal point).
  std::string to_string(int precision = 3) const;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi]; samples outside the range are clamped
/// into the first/last bin so every observation is counted (matching how the
/// paper's error histograms show tail bins).
class Histogram {
 public:
  /// Creates `bins` equal-width bins spanning [lo, hi]. Requires bins >= 1
  /// and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  /// Center value of a bin.
  double bin_center(std::size_t bin) const;
  /// Lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  /// Upper edge of a bin.
  double bin_hi(std::size_t bin) const;
  /// Fraction of all samples in a bin (0 if empty histogram).
  double fraction(std::size_t bin) const;

  /// Renders an ASCII bar chart: one line per bin,
  /// "[lo, hi)  count  ####". `width` is the length of the longest bar.
  std::string to_ascii(int width = 40, int precision = 2) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Percentile of a sample (linear interpolation); p in [0, 100].
double percentile(std::vector<double> xs, double p);

}  // namespace xtv
