#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace xtv {

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error) {
  // Per-process tmp name: several processes may publish to the same path
  // concurrently (a worker fleet saving one shared cell cache), and a
  // shared tmp would let one writer truncate another's half-finalized
  // file. Last rename wins; every rename is a complete file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + tmp;
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    if (error) *error = "short write finalizing " + tmp;
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

}  // namespace xtv
