// Memory accounting and admission control for cluster analyses.
//
// A pathological long-chain cluster can ask SyMPVL for a Krylov basis (or
// the transient engines for waveform storage) far beyond what the host can
// give; without a budget the kernel's OOM killer ends the whole run and
// every certified finding with it. This layer makes memory a first-class,
// *recoverable* resource:
//
//  - ClusterScope: a thread-local accounting arena. While a worker holds a
//    scope, every tracked allocation (DenseMatrix storage, Krylov block
//    vectors, waveform samples) charges bytes against it. An optional hard
//    limit turns a breach into the typed, ladder-recoverable
//    StatusCode::kResourceExceeded — the verifier degrades the victim to
//    the conservative Devgan bound (FindingStatus::kResourceBound) instead
//    of dying.
//  - MemCharge / ScopedCharge: RAII charge handles. MemCharge is embedded
//    in owning containers (DenseMatrix); ScopedCharge accumulates
//    incremental growth (Krylov sweeps, waveform appends).
//  - MemoryGovernor: process-wide registry of live scopes plus a pressure
//    flag, giving admission control a global picture without putting any
//    shared atomic on the per-allocation charge path.
//  - RssWatchdog: a sampling thread that reads /proc/self/statm and raises
//    the governor's pressure flag when resident set crosses a soft limit;
//    the verifier sheds the largest queued clusters first in response.
//
// Charge-path cost: two relaxed atomic RMWs on the owning scope (used_,
// peak_) — no process-global contention.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace xtv::resource {

/// Current resident-set size of this process in bytes, read from
/// /proc/self/statm. Returns 0 when the proc interface is unavailable
/// (non-Linux hosts), which disables RSS-based shedding gracefully.
std::size_t read_rss_bytes();

/// Thread-local accounting arena for one cluster analysis. Nestable: the
/// constructor saves the previous current scope and the destructor
/// restores it. `limit_bytes == 0` means account-only (never throws).
class ClusterScope {
 public:
  explicit ClusterScope(std::size_t limit_bytes = 0,
                        const char* label = "cluster");
  ~ClusterScope();

  ClusterScope(const ClusterScope&) = delete;
  ClusterScope& operator=(const ClusterScope&) = delete;

  std::size_t used() const { return used_.load(std::memory_order_relaxed); }
  std::size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  std::size_t limit() const { return limit_; }
  const char* label() const { return label_; }

  /// The scope charges on this thread are currently billed to (nullptr
  /// when no scope is active — charges then become no-ops).
  static ClusterScope* current();

  /// Installs `scope` (which may be nullptr) as this thread's current
  /// scope and returns the previous one. The batch scheduler uses this to
  /// park a victim's scope while other lanes run and re-attach it for the
  /// victim's own lane sections; callers must restore the returned scope.
  static ClusterScope* exchange_current(ClusterScope* scope);

  /// RAII form of exchange_current: bills this thread's charges to
  /// `scope` while alive, restoring the previous binding on destruction.
  /// Unlike the constructor/destructor pair, Activation never registers
  /// or unregisters the scope with the governor — the scope object's own
  /// lifetime does that exactly once.
  class Activation {
   public:
    explicit Activation(ClusterScope* scope);
    ~Activation();
    Activation(const Activation&) = delete;
    Activation& operator=(const Activation&) = delete;

   private:
    ClusterScope* saved_;
  };

  /// Suspends limit enforcement (not accounting) on this thread while
  /// alive. Used around the Devgan-bound fallback so the rung that "cannot
  /// fail" truly cannot: computing the bound for an over-budget cluster
  /// must not itself re-raise kResourceExceeded.
  class Exemption {
   public:
    Exemption();
    ~Exemption();
    Exemption(const Exemption&) = delete;
    Exemption& operator=(const Exemption&) = delete;

   private:
    ClusterScope* scope_;
  };

  /// Detaches this thread from its current scope entirely while alive:
  /// allocations made under a Suspension charge no scope at all. Used when
  /// copying payloads into caches that outlive the victim (the reduced-
  /// model cache): a MemCharge bound to the victim's scope would dangle
  /// once that scope dies, so cache-owned storage must bind to none.
  class Suspension {
   public:
    Suspension();
    ~Suspension();
    Suspension(const Suspension&) = delete;
    Suspension& operator=(const Suspension&) = delete;

   private:
    ClusterScope* saved_;
  };

 private:
  friend class MemCharge;
  friend class ScopedCharge;

  /// Adds `bytes`; throws NumericalError(kResourceExceeded) on limit
  /// breach (charge rolled back first, so accounting stays exact).
  void charge(std::size_t bytes);
  void release(std::size_t bytes);
  bool exempt() const { return exempt_depth_ > 0; }

  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
  std::size_t limit_ = 0;
  const char* label_ = "cluster";
  int exempt_depth_ = 0;  // touched only by the owning thread
  ClusterScope* prev_ = nullptr;
};

/// RAII charge for a single fixed-size allocation, embedded in owning
/// containers. Remembers which scope it charged so release is exact even
/// if the object outlives the scope's tenure as `current()` (the scope
/// object itself must outlive the charge, which the verifier guarantees:
/// findings keep no matrices alive past analyze_victim).
class MemCharge {
 public:
  MemCharge() = default;
  explicit MemCharge(std::size_t bytes);
  ~MemCharge() { reset(); }

  MemCharge(const MemCharge& other) : MemCharge(other.bytes_) {}
  MemCharge& operator=(const MemCharge& other) {
    if (this != &other) {
      MemCharge tmp(other.bytes_);  // may throw before we give anything up
      reset();
      swap(tmp);
    }
    return *this;
  }
  MemCharge(MemCharge&& other) noexcept { swap(other); }
  MemCharge& operator=(MemCharge&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }

  std::size_t bytes() const { return bytes_; }

 private:
  void reset();
  void swap(MemCharge& other) {
    std::swap(scope_, other.scope_);
    std::swap(bytes_, other.bytes_);
  }

  ClusterScope* scope_ = nullptr;
  std::size_t bytes_ = 0;
};

/// RAII accumulator for incrementally grown storage (Krylov blocks,
/// waveform samples). Binds to the current scope on the first add() and
/// releases the running total on destruction.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ~ScopedCharge();

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// Charges `bytes` more; throws kResourceExceeded on breach.
  void add(std::size_t bytes);

  /// Returns `bytes` of the running total early (e.g. a reservation that
  /// turned out larger than the final extent). Clamped to the total; the
  /// peak already recorded is intentionally untouched.
  void shrink(std::size_t bytes);

  std::size_t total() const { return total_; }

 private:
  ClusterScope* scope_ = nullptr;
  std::size_t total_ = 0;
};

/// Process-wide view over live scopes plus the memory-pressure flag that
/// drives admission control. Scopes register/unregister under a mutex;
/// the charge path never touches the governor.
class MemoryGovernor {
 public:
  static MemoryGovernor& instance();

  /// Sum of bytes currently charged across every live scope.
  std::size_t scoped_bytes() const;

  /// Number of live scopes (diagnostics).
  std::size_t scope_count() const;

  /// True when the watchdog (or a forced override) reports pressure; the
  /// verifier responds by shedding its largest queued clusters to bounds.
  bool under_pressure() const {
    return forced_pressure_.load(std::memory_order_relaxed) ||
           watchdog_pressure_.load(std::memory_order_relaxed);
  }

  void set_watchdog_pressure(bool on) {
    watchdog_pressure_.store(on, std::memory_order_relaxed);
  }

  /// Test/chaos hook: pins under_pressure() to true regardless of RSS.
  void force_pressure(bool on) {
    forced_pressure_.store(on, std::memory_order_relaxed);
  }

 private:
  friend class ClusterScope;
  MemoryGovernor() = default;

  void add_scope(ClusterScope* scope);
  void remove_scope(ClusterScope* scope);

  mutable std::mutex mutex_;
  std::vector<ClusterScope*> scopes_;
  std::atomic<bool> watchdog_pressure_{false};
  std::atomic<bool> forced_pressure_{false};
};

/// Sampling thread that compares resident-set size against a soft limit
/// and toggles the governor's pressure flag. Joined (and the flag
/// cleared) on destruction, so its lifetime brackets one verify() call.
class RssWatchdog {
 public:
  /// `soft_limit_bytes == 0` (or an unreadable /proc) makes the watchdog
  /// a no-op. `poll_interval_ms` is short so shedding reacts before the
  /// kernel's OOM killer would.
  explicit RssWatchdog(std::size_t soft_limit_bytes,
                       unsigned poll_interval_ms = 25);
  ~RssWatchdog();

  RssWatchdog(const RssWatchdog&) = delete;
  RssWatchdog& operator=(const RssWatchdog&) = delete;

 private:
  void run(std::size_t soft_limit_bytes, unsigned poll_interval_ms);

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace xtv::resource
