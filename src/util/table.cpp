#include "util/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace xtv {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::num_scaled(double v, double scale,
                                   const std::string& suffix, int precision) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.*f %s", precision, v / scale,
                suffix.c_str());
  return buf;
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& out) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      for (std::size_t i = row[c].size(); i < widths[c]; ++i) out << ' ';
      out << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  render_row(header_, out);
  out << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) out << '-';
    out << '|';
  }
  out << '\n';
  for (const auto& row : rows_) render_row(row, out);
  return out.str();
}

}  // namespace xtv
