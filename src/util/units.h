// Unit helpers. The whole library works in SI units (volts, seconds,
// farads, ohms, amperes, meters); these constexpr factors keep call sites
// readable when values are naturally expressed in engineering units.
#pragma once

namespace xtv::units {

// Length.
inline constexpr double um = 1e-6;  ///< micrometer in meters
inline constexpr double nm = 1e-9;  ///< nanometer in meters
inline constexpr double mm = 1e-3;  ///< millimeter in meters

// Time.
inline constexpr double ns = 1e-9;   ///< nanosecond in seconds
inline constexpr double ps = 1e-12;  ///< picosecond in seconds

// Capacitance.
inline constexpr double fF = 1e-15;  ///< femtofarad in farads
inline constexpr double pF = 1e-12;  ///< picofarad in farads

// Resistance.
inline constexpr double kOhm = 1e3;  ///< kiloohm in ohms

// Current.
inline constexpr double mA = 1e-3;  ///< milliampere in amperes
inline constexpr double uA = 1e-6;  ///< microampere in amperes

}  // namespace xtv::units
