#include "util/thread_pool.h"

#include <atomic>
#include <memory>

namespace xtv {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads > 0 ? threads : 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  // One claiming task per worker beats one task per index: the queue is
  // touched thread_count times, not count times. Every index runs even
  // when some indices throw; the first exception resurfaces at the end.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    submit([this, next, count, &fn] {
      // Isolate each index: a throwing fn(i) must not abort this worker's
      // claim loop and silently skip every index it would have claimed.
      // The first exception is still surfaced from wait_idle().
      for (std::size_t i = next->fetch_add(1); i < count;
           i = next->fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace xtv
