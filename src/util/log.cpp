#include "util/log.h"

#include <cstdarg>
#include <cstdio>

namespace xtv {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
  }
  return "[?    ] ";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "%s%s\n", prefix(level), msg.c_str());
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "%s%s\n", prefix(level), buf);
}

}  // namespace xtv
