#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/status.h"

namespace xtv {
namespace subprocess {

Pipe make_pipe() {
  int fds[2];
  if (::pipe(fds) != 0)
    throw NumericalError(StatusCode::kInternal,
                         std::string("subprocess: pipe() failed: ") +
                             std::strerror(errno));
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  return Pipe{fds[0], fds[1]};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

std::string ExitStatus::describe() const {
  char buf[64];
  if (signaled) {
    const char* name = ::strsignal(sig);
    std::snprintf(buf, sizeof(buf), "killed by signal %d (%s)", sig,
                  name ? name : "?");
  } else if (exited) {
    std::snprintf(buf, sizeof(buf), "exited with status %d", code);
  } else {
    std::snprintf(buf, sizeof(buf), "stopped in an unknown state");
  }
  return buf;
}

bool wait_for(pid_t pid, ExitStatus* status) {
  int raw = 0;
  pid_t got;
  do {
    got = ::waitpid(pid, &raw, 0);
  } while (got < 0 && errno == EINTR);
  if (got != pid) return false;
  ExitStatus s;
  s.exited = WIFEXITED(raw);
  if (s.exited) s.code = WEXITSTATUS(raw);
  s.signaled = WIFSIGNALED(raw);
  if (s.signaled) s.sig = WTERMSIG(raw);
  if (status) *status = s;
  return true;
}

bool try_wait(pid_t pid, ExitStatus* status) {
  int raw = 0;
  pid_t got;
  do {
    got = ::waitpid(pid, &raw, WNOHANG);
  } while (got < 0 && errno == EINTR);
  if (got != pid) return false;
  ExitStatus s;
  s.exited = WIFEXITED(raw);
  if (s.exited) s.code = WEXITSTATUS(raw);
  s.signaled = WIFSIGNALED(raw);
  if (s.signaled) s.sig = WTERMSIG(raw);
  if (status) *status = s;
  return true;
}

namespace {

// Shared with the signal handler: plain stores/loads of lock-free
// atomics, the only data flow the async-signal-safety rules allow.
std::atomic<int> g_marker_fd{-1};
std::atomic<std::uint64_t> g_marker_victim{kNoCrashVictim};

/// Async-signal-safe unsigned decimal formatter; returns chars written.
std::size_t format_u64(std::uint64_t v, char* out) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

/// EINTR-retrying full write; ignores failure (nothing a handler can do).
void full_write(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return;
    }
  }
}

extern "C" void crash_marker_signal_handler(int sig) {
  const int fd = g_marker_fd.load(std::memory_order_relaxed);
  if (fd >= 0) write_crash_marker(fd, g_marker_victim.load(std::memory_order_relaxed), sig);
  // Re-raise with the default disposition so the supervisor's waitpid
  // sees the truthful WTERMSIG (and core dumps still happen when
  // enabled) instead of a laundered exit code.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void write_crash_marker(int fd, std::uint64_t victim, int sig) {
  // "xtvjc <victim> <signal>\n" assembled without stdio or allocation.
  char line[64];
  std::size_t n = 0;
  for (const char* p = kCrashMarkerMagic; *p; ++p) line[n++] = *p;
  line[n++] = ' ';
  n += format_u64(victim, line + n);
  line[n++] = ' ';
  n += format_u64(static_cast<std::uint64_t>(sig < 0 ? 0 : sig), line + n);
  line[n++] = '\n';
  full_write(fd, line, n);
  ::fsync(fd);
}

bool crash_marker_handlers_enabled() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
}

void install_crash_marker_handler(int fd) {
  if (!crash_marker_handlers_enabled()) return;
  g_marker_fd.store(fd, std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &crash_marker_signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_NODEFER unnecessary (the handler re-raises after SIG_DFL);
  // SA_RESETHAND would also work but we reset explicitly for SIGBUS et
  // al. delivered as a *different* signal than the installed one.
  sa.sa_flags = 0;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  ::sigaction(SIGFPE, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

void set_crash_marker_victim(std::uint64_t victim) {
  g_marker_victim.store(victim, std::memory_order_relaxed);
}

}  // namespace subprocess
}  // namespace xtv
