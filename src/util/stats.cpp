#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace xtv {

void SummaryStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

void SummaryStats::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double SummaryStats::mean() const {
  return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
}

double SummaryStats::stddev() const {
  if (n_ == 0) return 0.0;
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(n_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::string SummaryStats::to_string(int precision) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "avg=%.*f std=%.*f min=%.*f max=%.*f (n=%zu)",
                precision, mean(), precision, stddev(), precision, min_,
                precision, max_, n_);
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins < 1) throw std::runtime_error("Histogram: need at least one bin");
  if (!(hi > lo)) throw std::runtime_error("Histogram: hi must exceed lo");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(std::floor(t * static_cast<double>(counts_.size())));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0
             ? 0.0
             : static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_ascii(int width, int precision) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  char buf[128];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(buf, sizeof(buf), "[%+.*f, %+.*f)  %6zu  ", precision,
                  bin_lo(b), precision, bin_hi(b), counts_[b]);
    out << buf;
    const auto bar = static_cast<int>(
        std::llround(static_cast<double>(width) *
                     static_cast<double>(counts_[b]) / static_cast<double>(peak)));
    for (int i = 0; i < bar; ++i) out << '#';
    out << '\n';
  }
  return out.str();
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::runtime_error("percentile: empty sample");
  std::sort(xs.begin(), xs.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace xtv
