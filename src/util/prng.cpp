#include "util/prng.h"

#include <cmath>
#include <stdexcept>

namespace xtv {

namespace {
constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;
constexpr std::uint64_t kIncrement = 1442695040888963407ULL;
}  // namespace

void Prng::reseed(std::uint64_t seed) {
  state_ = 0;
  have_spare_normal_ = false;
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Prng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * kMultiplier + kIncrement;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  const auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

std::uint64_t Prng::next_u64() {
  const std::uint64_t hi = next_u32();
  return (hi << 32U) | next_u32();
}

double Prng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11U) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Prng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::runtime_error("Prng: uniform_int bounds reversed");
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // Modulo bias is negligible for the small spans used here.
  return lo + static_cast<int>(next_u64() % span);
}

double Prng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * M_PI * v;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Prng::log_uniform(double lo, double hi) {
  if (!(lo > 0.0 && hi >= lo))
    throw std::runtime_error("Prng: log_uniform needs 0 < lo <= hi");
  return lo * std::exp(uniform() * std::log(hi / lo));
}

bool Prng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Prng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (!(total > 0.0))
    throw std::runtime_error("Prng: weighted_index needs a positive total weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

}  // namespace xtv
