// Wall-clock budgets and cooperative cancellation for long-running
// cluster analyses.
//
// Chip-level verification is a batch job over tens of thousands of
// independent clusters; a single pathological long-chain RC cluster must
// not be allowed to stall a worker (and with it the whole run) for hours.
// The verifier therefore gives each cluster a wall-clock Deadline and
// threads a CancelToken through the analysis options; the transient
// engines poll the token in their time-stepping loops and raise
// StatusCode::kDeadlineExceeded when the budget is gone, which the
// verifier's degradation ladder converts into the conservative analytic
// bound (FindingStatus::kDeadlineBound) instead of a hung pool slot.
//
// Polling cost: one steady_clock read per accepted/attempted time step —
// nanoseconds against the microseconds-to-milliseconds a step costs.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <string>

#include "util/status.h"

namespace xtv {

/// A wall-clock budget. Default-constructed deadlines never expire, so
/// "no budget configured" needs no special-casing at the poll sites.
class Deadline {
 public:
  Deadline() = default;

  /// A deadline `seconds` of wall time from now (<= 0 expires immediately).
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.bounded_ = true;
    d.expires_at_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                                       std::chrono::duration<double>(seconds));
    return d;
  }

  /// The never-expiring deadline (same as default construction).
  static Deadline unlimited() { return Deadline(); }

  bool bounded() const { return bounded_; }
  bool expired() const { return bounded_ && clock::now() >= expires_at_; }

  /// Seconds until expiry; negative once expired, +inf when unbounded.
  double remaining_seconds() const {
    if (!bounded_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expires_at_ - clock::now()).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  bool bounded_ = false;
  clock::time_point expires_at_{};
};

/// Cooperative cancellation: the owner cancels (or attaches a Deadline),
/// the worker polls. Immovable because poll sites hold a raw pointer; the
/// token outlives the analysis call it is passed to.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancel() was called or the attached deadline passed.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) || deadline_.expired();
  }

  const Deadline& deadline() const { return deadline_; }

  /// Poll-and-throw helper for the inner loops: raises the typed,
  /// ladder-recoverable kDeadlineExceeded with the caller's context.
  void check(const char* where) const {
    if (cancelled())
      throw NumericalError(StatusCode::kDeadlineExceeded,
                           std::string(where) + ": cluster budget exhausted");
  }

 private:
  std::atomic<bool> cancelled_{false};
  Deadline deadline_{};
};

/// Null-safe poll for options structs carrying an optional token pointer.
inline void poll_cancel(const CancelToken* token, const char* where) {
  if (token) token->check(where);
}

}  // namespace xtv
