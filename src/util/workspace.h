// Per-thread reusable buffer arena for the hot per-victim kernels.
//
// Every victim analysis allocates the same shapes over and over: dense MNA
// matrices, Krylov block vectors, diagonalization buffers, Newton scratch,
// waveform storage. The paper's clusters are tiny (2-5 nets post-pruning)
// but there are thousands of them per chip, so allocator churn — not
// arithmetic — dominates the cheap stages. The Workspace keeps a bounded,
// strictly thread-local pool of `std::vector<double>` storage: kernels
// check buffers out (`acquire`), use them, and return their capacity
// (`release`) for the next victim on the same worker.
//
// Composition with resource accounting (util/resource.h): the Workspace
// recycles *physical* capacity only. Logical accounting is unchanged —
// DenseMatrix still carries a MemCharge for its full extent, so a cluster
// memory budget (--cluster-mem-mb) sees exactly the bytes it saw before
// pooling, and a breach still throws before the buffer is handed out.
//
// Lifetime rules:
//  - Pools are thread-local. A buffer released on thread B after being
//    acquired on thread A simply joins B's pool; buffers are fungible.
//  - acquire() always returns zero-filled storage of the requested size,
//    so recycled capacity can never leak one victim's values into the next.
//  - The pool is bounded (buffer count and total bytes); beyond the bound,
//    released capacity is freed normally. A worker thread's pool dies with
//    the thread.
//  - Workspace::Scope installs a fresh, empty pool for the current thread
//    and restores the previous one on exit — used by tests that need
//    isolated pool statistics, never required for correctness.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace xtv::workspace {

/// Process-wide pool statistics (relaxed atomics; exact under a quiescent
/// reader, which is all the benches need).
struct Stats {
  std::size_t acquires = 0;      ///< total acquire() calls
  std::size_t pool_hits = 0;     ///< acquires served from recycled capacity
  std::size_t pool_misses = 0;   ///< acquires that had to allocate fresh
  std::size_t releases = 0;      ///< total release() calls with capacity
  std::size_t dropped = 0;       ///< releases the bounded pool refused
  std::size_t reused_bytes = 0;  ///< bytes served without touching malloc
};

/// A bounded pool of double buffers. Not thread-safe by design: every
/// instance is owned by exactly one thread (see local()).
class Workspace {
 public:
  /// Pool bounds: past either, released buffers are freed, not kept.
  static constexpr std::size_t kMaxBuffers = 64;
  static constexpr std::size_t kMaxPooledBytes = 48u << 20;  // 48 MiB
  /// Buffers above this size are never pooled (one-off giants).
  static constexpr std::size_t kMaxBufferBytes = 16u << 20;  // 16 MiB

  Workspace() = default;
  ~Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Fills `out` with a zero-initialized buffer of size n, reusing pooled
  /// capacity when a large-enough buffer is available (best fit).
  void acquire(std::vector<double>& out, std::size_t n);

  /// Donates `buf`'s capacity to the pool (buf is left empty). Oversized
  /// buffers and donations beyond the pool bounds are freed instead.
  void release(std::vector<double>& buf);

  /// Frees every pooled buffer.
  void clear();

  std::size_t pooled_buffers() const { return pool_.size(); }
  std::size_t pooled_bytes() const { return pooled_bytes_; }

  /// The calling thread's workspace: the innermost installed Scope's, or
  /// the thread's persistent default arena.
  static Workspace& local();

  /// Installs a fresh workspace for the current thread; restores the
  /// previous one (and frees this one's pool) on destruction. Defined
  /// below the class (it holds a Workspace by value).
  class Scope;

 private:
  std::vector<std::vector<double>> pool_;
  std::size_t pooled_bytes_ = 0;
};

class Workspace::Scope {
 public:
  Scope();
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  Workspace& workspace() { return workspace_; }

 private:
  Workspace workspace_;
  Workspace* prev_;
};

/// Convenience forwarding to Workspace::local().
void acquire(std::vector<double>& out, std::size_t n);
void release(std::vector<double>& buf);

/// Snapshot / reset of the process-wide stats (bench + tests).
Stats stats();
void reset_stats();

}  // namespace xtv::workspace
