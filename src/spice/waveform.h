// Sampled waveforms and the measurements the paper's experiments need:
// glitch peaks (Tables 1/3/4, Figures 3-7), 50%-crossing delays and slews
// (Table 2).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace xtv {

/// A time-ordered sequence of (t, v) samples with linear interpolation
/// between samples.
class Waveform {
 public:
  Waveform() = default;

  /// Appends a sample; time must be >= the last sample's time.
  void append(double t, double v);

  /// Pre-allocates storage for n samples (append() still grows past it).
  /// Transient engines know their step count up front; reserving kills the
  /// doubling-reallocation churn on the hottest storage in the run.
  void reserve(std::size_t n) {
    times_.reserve(n);
    values_.reserve(n);
  }

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  double time(std::size_t i) const { return times_.at(i); }
  double value(std::size_t i) const { return values_.at(i); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  double first_value() const { return values_.front(); }
  double last_value() const { return values_.back(); }
  double end_time() const { return times_.back(); }

  /// Linear interpolation at time t (clamped to the end values).
  double at(double t) const;

  /// Maximum and minimum sample values.
  double max_value() const;
  double min_value() const;

  /// True when every sample (time and value) is finite — the numerical
  /// guard the analyzers run on engine outputs before trusting a peak.
  bool all_finite() const;

  /// Peak *excursion* from the waveform's initial value: the sample value
  /// v* maximizing |v - v(0)|, returned as the signed deviation v* - v(0).
  /// This is the crosstalk glitch peak when the waveform is a quiet victim.
  double peak_deviation() const;

  /// First time the waveform crosses `level` in the given direction at or
  /// after `after`; nullopt if it never does.
  std::optional<double> crossing_time(double level, bool rising,
                                      double after = 0.0) const;

  /// 10%-90% transition time of a full swing from v_lo to v_hi (rising) or
  /// the mirror for falling; nullopt if the waveform does not complete the
  /// transition.
  std::optional<double> slew_10_90(double v_lo, double v_hi, bool rising) const;

  /// Time-weighted average value over the full span (trapezoidal; the
  /// paper's Section 4.2 requires driver models to capture "the average
  /// and RMS current ... at the cell driving point" for electromigration
  /// checks).
  double average() const;

  /// Time-weighted RMS value over the full span (trapezoidal on v^2).
  double rms() const;

  /// Pointwise maximum absolute difference against another waveform,
  /// evaluated on the union of both sample grids.
  double max_abs_error(const Waveform& other) const;

  /// Renders "t v" rows (for EXPERIMENTS.md-style waveform dumps).
  std::string to_tsv(int max_rows = 0) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// 50%-crossing delay from an input transition to an output transition:
/// t_cross(out, 0.5*(lo+hi), out_rising) - t_cross(in, 0.5*(lo+hi), in_rising).
/// nullopt if either crossing is missing.
std::optional<double> measure_delay(const Waveform& in, bool in_rising,
                                    const Waveform& out, bool out_rising,
                                    double v_lo, double v_hi);

}  // namespace xtv
