#include "spice/waveform.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace xtv {

void Waveform::append(double t, double v) {
  if (!times_.empty() && t < times_.back())
    throw std::runtime_error("Waveform: non-monotonic time");
  times_.push_back(t);
  values_.push_back(v);
}

double Waveform::at(double t) const {
  assert(!times_.empty());
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  if (span <= 0.0) return values_[hi];
  const double frac = (t - times_[lo]) / span;
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

double Waveform::max_value() const {
  return *std::max_element(values_.begin(), values_.end());
}

double Waveform::min_value() const {
  return *std::min_element(values_.begin(), values_.end());
}

bool Waveform::all_finite() const {
  for (double t : times_)
    if (!std::isfinite(t)) return false;
  for (double v : values_)
    if (!std::isfinite(v)) return false;
  return true;
}

double Waveform::peak_deviation() const {
  assert(!values_.empty());
  const double v0 = values_.front();
  double best = 0.0;
  for (double v : values_)
    if (std::fabs(v - v0) > std::fabs(best)) best = v - v0;
  return best;
}

std::optional<double> Waveform::crossing_time(double level, bool rising,
                                              double after) const {
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] < after) continue;
    const double v0 = values_[i - 1];
    const double v1 = values_[i];
    const bool crossed = rising ? (v0 < level && v1 >= level)
                                : (v0 > level && v1 <= level);
    if (!crossed) continue;
    const double span = v1 - v0;
    const double frac = span == 0.0 ? 0.0 : (level - v0) / span;
    const double t = times_[i - 1] + frac * (times_[i] - times_[i - 1]);
    if (t >= after) return t;
  }
  return std::nullopt;
}

std::optional<double> Waveform::slew_10_90(double v_lo, double v_hi,
                                           bool rising) const {
  const double v10 = v_lo + 0.1 * (v_hi - v_lo);
  const double v90 = v_lo + 0.9 * (v_hi - v_lo);
  if (rising) {
    const auto t10 = crossing_time(v10, true);
    if (!t10) return std::nullopt;
    const auto t90 = crossing_time(v90, true, *t10);
    if (!t90) return std::nullopt;
    return *t90 - *t10;
  }
  const auto t90 = crossing_time(v90, false);
  if (!t90) return std::nullopt;
  const auto t10 = crossing_time(v10, false, *t90);
  if (!t10) return std::nullopt;
  return *t10 - *t90;
}

double Waveform::average() const {
  assert(!times_.empty());
  const double span = times_.back() - times_.front();
  if (span <= 0.0) return values_.front();
  double integral = 0.0;
  for (std::size_t i = 1; i < times_.size(); ++i)
    integral += 0.5 * (values_[i] + values_[i - 1]) * (times_[i] - times_[i - 1]);
  return integral / span;
}

double Waveform::rms() const {
  assert(!times_.empty());
  const double span = times_.back() - times_.front();
  if (span <= 0.0) return std::fabs(values_.front());
  double integral = 0.0;
  for (std::size_t i = 1; i < times_.size(); ++i)
    integral += 0.5 * (values_[i] * values_[i] + values_[i - 1] * values_[i - 1]) *
                (times_[i] - times_[i - 1]);
  return std::sqrt(integral / span);
}

double Waveform::max_abs_error(const Waveform& other) const {
  double err = 0.0;
  for (double t : times_) err = std::max(err, std::fabs(at(t) - other.at(t)));
  for (double t : other.times_) err = std::max(err, std::fabs(at(t) - other.at(t)));
  return err;
}

std::string Waveform::to_tsv(int max_rows) const {
  std::ostringstream out;
  char buf[80];
  const std::size_t n = times_.size();
  std::size_t stride = 1;
  if (max_rows > 0 && n > static_cast<std::size_t>(max_rows))
    stride = (n + static_cast<std::size_t>(max_rows) - 1) /
             static_cast<std::size_t>(max_rows);
  for (std::size_t i = 0; i < n; i += stride) {
    std::snprintf(buf, sizeof(buf), "%.6e\t%.6e\n", times_[i], values_[i]);
    out << buf;
  }
  return out.str();
}

std::optional<double> measure_delay(const Waveform& in, bool in_rising,
                                    const Waveform& out, bool out_rising,
                                    double v_lo, double v_hi) {
  const double mid = 0.5 * (v_lo + v_hi);
  const auto t_in = in.crossing_time(mid, in_rising);
  if (!t_in) return std::nullopt;
  const auto t_out = out.crossing_time(mid, out_rising, *t_in);
  if (!t_out) return std::nullopt;
  return *t_out - *t_in;
}

}  // namespace xtv
