#include "spice/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "linalg/ordering.h"
#include "spice/mosfet_eval.h"
#include "util/fault_injection.h"
#include "util/fp_guard.h"
#include "util/log.h"
#include "util/resource.h"
#include "util/status.h"

namespace xtv {

Simulator::Simulator(const Circuit& circuit, double gmin)
    : circuit_(circuit), gmin_(gmin) {
  // Collect explicit capacitors plus the fixed device capacitances of every
  // MOSFET (gate-source, gate-drain, drain junction).
  for (const auto& c : circuit_.capacitors())
    caps_.push_back({c.a, c.b, c.farads, 0.0});
  for (const auto& m : circuit_.mosfets()) {
    const MosfetCaps mc =
        mosfet_caps(circuit_.models()[static_cast<std::size_t>(m.model)], m.w, m.l);
    caps_.push_back({m.g, m.s, mc.cgs, 0.0});
    caps_.push_back({m.g, m.d, mc.cgd, 0.0});
    caps_.push_back({m.d, Circuit::ground(), mc.cdb, 0.0});
  }
  is_linear_ =
      circuit_.mosfets().empty() && circuit_.terminations().empty();
}

std::size_t Simulator::unknown_count() const {
  return static_cast<std::size_t>(circuit_.node_count() - 1) +
         circuit_.vsources().size();
}

void Simulator::assemble(const Vector& x, double t, double geq_scale,
                         IntegrationMethod method, const Vector& prev_x,
                         double gmin, TripletList& jac, Vector& rhs) const {
  const std::size_t nv = static_cast<std::size_t>(circuit_.node_count() - 1);

  auto stamp_conductance = [&](int a, int b, double g) {
    if (a != Circuit::ground()) {
      const auto ia = static_cast<std::size_t>(node_unknown(a));
      jac.add(ia, ia, g);
      if (b != Circuit::ground()) {
        const auto ib = static_cast<std::size_t>(node_unknown(b));
        jac.add(ia, ib, -g);
        jac.add(ib, ia, -g);
        jac.add(ib, ib, g);
      }
    } else if (b != Circuit::ground()) {
      const auto ib = static_cast<std::size_t>(node_unknown(b));
      jac.add(ib, ib, g);
    }
  };
  auto inject = [&](int node, double current) {
    if (node != Circuit::ground())
      rhs[static_cast<std::size_t>(node_unknown(node))] += current;
  };

  // Global gmin from every node to ground (diagonal regularization).
  for (std::size_t i = 0; i < nv; ++i) jac.add(i, i, gmin);

  for (const auto& r : circuit_.resistors())
    stamp_conductance(r.a, r.b, 1.0 / r.ohms);

  // Capacitor companion models. geq_scale = 1/dt (BE) or 2/dt (TRAP);
  // 0 means DC and the capacitor is open (pattern kept via a zero stamp).
  for (const auto& cap : caps_) {
    const double geq = geq_scale * cap.farads;
    stamp_conductance(cap.a, cap.b, geq);
    if (geq_scale != 0.0) {
      const double v_prev = (cap.a == Circuit::ground()
                                 ? 0.0
                                 : prev_x[static_cast<std::size_t>(node_unknown(cap.a))]) -
                            (cap.b == Circuit::ground()
                                 ? 0.0
                                 : prev_x[static_cast<std::size_t>(node_unknown(cap.b))]);
      double ieq = geq * v_prev;
      if (method == IntegrationMethod::kTrapezoidal) ieq += cap.i_prev;
      // Branch current a->b of the companion: geq * v_ab - ieq. KCL: the
      // history term enters as an injection into a (and out of b).
      inject(cap.a, ieq);
      inject(cap.b, -ieq);
    }
  }

  // Voltage sources: branch-current unknowns.
  for (std::size_t k = 0; k < circuit_.vsources().size(); ++k) {
    const auto& v = circuit_.vsources()[k];
    const std::size_t cur = nv + k;
    if (v.pos != Circuit::ground()) {
      const auto ip = static_cast<std::size_t>(node_unknown(v.pos));
      jac.add(ip, cur, 1.0);
      jac.add(cur, ip, 1.0);
    }
    if (v.neg != Circuit::ground()) {
      const auto in = static_cast<std::size_t>(node_unknown(v.neg));
      jac.add(in, cur, -1.0);
      jac.add(cur, in, -1.0);
    }
    rhs[cur] += v.wave.value(t);
  }

  for (const auto& i : circuit_.isources()) {
    const double cur = i.wave.value(t);
    inject(i.into, cur);
    inject(i.from, -cur);
  }

  // MOSFETs: linearized channel around the trial point.
  for (const auto& m : circuit_.mosfets()) {
    const double vd = voltage(x, m.d);
    const double vg = voltage(x, m.g);
    const double vs = voltage(x, m.s);
    const MosfetOp op = eval_mosfet(
        circuit_.models()[static_cast<std::size_t>(m.model)], m.w, m.l, vd, vg, vs);

    // Channel current flows d -> s:  i = ids0 + gm*(vgs-vgs0) + gds*(vds-vds0).
    const double vgs = vg - vs;
    const double vds = vd - vs;
    const double ieq = op.ids - op.gm * vgs - op.gds * vds;

    auto add = [&](int row_node, int col_node, double val) {
      if (row_node == Circuit::ground() || col_node == Circuit::ground()) return;
      jac.add(static_cast<std::size_t>(node_unknown(row_node)),
              static_cast<std::size_t>(node_unknown(col_node)), val);
    };
    // Row d: +i; Row s: -i.
    add(m.d, m.d, op.gds);
    add(m.d, m.g, op.gm);
    add(m.d, m.s, -(op.gm + op.gds));
    add(m.s, m.d, -op.gds);
    add(m.s, m.g, -op.gm);
    add(m.s, m.s, op.gm + op.gds);
    inject(m.d, -ieq);
    inject(m.s, ieq);
    // gmin across the channel keeps cutoff devices from floating nodes.
    stamp_conductance(m.d, m.s, gmin);
  }

  // One-port nonlinear terminations: current INTO the node.
  for (const auto& term : circuit_.terminations()) {
    const double v = voltage(x, term.node);
    const double i0 = term.device->current(v, t);
    const double g = term.device->conductance(v, t);
    if (term.node == Circuit::ground()) continue;
    const auto in = static_cast<std::size_t>(node_unknown(term.node));
    jac.add(in, in, -g);
    rhs[in] += i0 - g * v;
  }
}

bool Simulator::newton_solve(Vector& x, double t, double geq_scale,
                             IntegrationMethod method, const Vector& prev_x,
                             double gmin, const TransientOptions& options,
                             std::size_t& iterations) {
  const std::size_t n = unknown_count();
  const std::size_t nv = static_cast<std::size_t>(circuit_.node_count() - 1);

  // Checked only on the converged path: gmin stepping and damping recover
  // transient overflow on purpose, but converged-with-FP-evidence is a
  // silently poisoned operating point.
  FpKernelGuard fp("spice_newton");
  for (int iter = 0; iter < options.max_newton; ++iter) {
    poll_cancel(options.cancel, "Simulator");
    ++iterations;
    fp.rearm();
    TripletList jac(n, n);
    Vector rhs(n, 0.0);
    assemble(x, t, geq_scale, method, prev_x, gmin, jac, rhs);

    // Linear circuits: the matrix depends only on (geq_scale, gmin), so one
    // factorization serves every time point at a given step size.
    const bool factor_is_current = is_linear_ && options.exploit_linearity &&
                                   lu_ && lu_geq_scale_ == geq_scale &&
                                   lu_gmin_ == gmin;
    if (!factor_is_current) {
      const SparseMatrix a = SparseMatrix::from_triplets(jac);
      if (!lu_) {
        fill_order_ = min_degree_order(a);
        lu_ = std::make_unique<SparseLu>(a, fill_order_);
      } else {
        lu_->refactor(a);
      }
      lu_geq_scale_ = geq_scale;
      lu_gmin_ = gmin;
    }
    const Vector x_new = lu_->solve(rhs);

    // Damped update on the voltage unknowns.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nv; ++i)
      max_dv = std::max(max_dv, std::fabs(x_new[i] - x[i]));
    double alpha = 1.0;
    if (max_dv > options.max_newton_dv) alpha = options.max_newton_dv / max_dv;

    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double dv = x_new[i] - x[i];
      x[i] += alpha * dv;
      // A NaN dv must not pass as converged (fabs(NaN) > tol is false).
      if (!std::isfinite(dv) ||
          (i < nv && std::fabs(dv) >
                         options.v_abstol + options.v_reltol * std::fabs(x[i])))
        converged = false;
    }
    if (converged && alpha == 1.0) {
      fp.check();
      return true;
    }
  }
  return false;
}

Vector Simulator::dc_operating_point() { return dc_full().node_voltages; }

Simulator::DcResult Simulator::dc_full() {
  if (XTV_INJECT_FAULT(FaultSite::kSpiceNewton))
    throw NumericalError(StatusCode::kNewtonDivergence,
                         "Simulator: injected Newton divergence");
  const std::size_t n = unknown_count();
  Vector x(n, 0.0);
  TransientOptions dc_opts;
  dc_opts.max_newton = 120;
  std::size_t iters = 0;

  // Plain Newton from zero, then gmin stepping as fallback.
  if (!newton_solve(x, 0.0, 0.0, IntegrationMethod::kBackwardEuler, x, gmin_,
                    dc_opts, iters)) {
    std::fill(x.begin(), x.end(), 0.0);
    bool ok = false;
    for (double g = 1e-3; g >= gmin_ * 0.99; g *= 0.1) {
      ok = newton_solve(x, 0.0, 0.0, IntegrationMethod::kBackwardEuler, x,
                        std::max(g, gmin_), dc_opts, iters);
      if (!ok) break;
    }
    if (ok)
      ok = newton_solve(x, 0.0, 0.0, IntegrationMethod::kBackwardEuler, x, gmin_,
                        dc_opts, iters);
    if (!ok)
      throw NumericalError(StatusCode::kNewtonDivergence,
                           "Simulator: DC operating point failed");
  }

  DcResult result;
  result.node_voltages.assign(static_cast<std::size_t>(circuit_.node_count()), 0.0);
  for (int node = 1; node < circuit_.node_count(); ++node)
    result.node_voltages[static_cast<std::size_t>(node)] =
        x[static_cast<std::size_t>(node_unknown(node))];
  const std::size_t nv = static_cast<std::size_t>(circuit_.node_count() - 1);
  result.vsource_currents.assign(circuit_.vsources().size(), 0.0);
  for (std::size_t k = 0; k < circuit_.vsources().size(); ++k)
    result.vsource_currents[k] = x[nv + k];
  return result;
}

void Simulator::update_cap_history(const Vector& x, const Vector& prev_x,
                                   double geq_scale, IntegrationMethod method) {
  for (auto& cap : caps_) {
    const double va = voltage(x, cap.a) - voltage(x, cap.b);
    const double vp = voltage(prev_x, cap.a) - voltage(prev_x, cap.b);
    const double geq = geq_scale * cap.farads;
    if (method == IntegrationMethod::kTrapezoidal)
      cap.i_prev = geq * (va - vp) - cap.i_prev;
    else
      cap.i_prev = geq * (va - vp);
  }
}

TransientResult Simulator::transient(const TransientOptions& options,
                                     const std::vector<int>& probe_nodes) {
  if (options.tstop <= 0.0)
    throw std::runtime_error("Simulator: tstop must be positive");
  poll_cancel(options.cancel, "Simulator");
  const double dt0 = options.dt > 0.0 ? options.dt : options.tstop / 2000.0;

  // Charge the expected probe-waveform storage (2 doubles per sample per
  // probe) against the cluster's memory budget before stepping begins.
  resource::ScopedCharge wave_bytes;
  wave_bytes.add((static_cast<std::size_t>(options.tstop / dt0) + 2) *
                 probe_nodes.size() * 2 * sizeof(double));

  // Start from DC; capacitor currents start at zero (steady state).
  const Vector v0 = dc_operating_point();
  const std::size_t n = unknown_count();
  Vector x(n, 0.0);
  for (int node = 1; node < circuit_.node_count(); ++node)
    x[static_cast<std::size_t>(node_unknown(node))] = v0[static_cast<std::size_t>(node)];
  for (auto& cap : caps_) cap.i_prev = 0.0;

  TransientResult result;
  result.probes.resize(probe_nodes.size());
  const std::size_t expected_samples =
      static_cast<std::size_t>(options.tstop / dt0) + 2;
  for (auto& wave : result.probes) wave.reserve(expected_samples);
  auto record = [&](double t) {
    for (std::size_t p = 0; p < probe_nodes.size(); ++p)
      result.probes[p].append(t, voltage(x, probe_nodes[p]));
  };
  record(0.0);

  const std::size_t nv = static_cast<std::size_t>(circuit_.node_count() - 1);
  Vector prev2 = x;         // state two accepted points back (LTE estimate)
  double dt_prev = dt0;     // last accepted step size
  bool have_two = false;
  double dt_next = dt0;

  double t = 0.0;
  while (t < options.tstop - 1e-18) {
    double dt = std::min(options.adaptive ? dt_next : dt0, options.tstop - t);
    Vector prev = x;
    int halvings = 0;
    for (;;) {
      const double geq_scale =
          (options.method == IntegrationMethod::kTrapezoidal ? 2.0 : 1.0) / dt;
      Vector trial = prev;
      std::size_t iters = 0;
      const bool ok = newton_solve(trial, t + dt, geq_scale, options.method,
                                   prev, gmin_, options, iters);
      result.newton_iterations += iters;

      if (ok && options.adaptive && have_two) {
        // Second-difference LTE proxy on the node voltages, scaled for the
        // possibly-uneven pair of steps.
        double lte = 0.0;
        const double r = dt / dt_prev;
        for (std::size_t i = 0; i < nv; ++i) {
          const double d2 =
              trial[i] - prev[i] - r * (prev[i] - prev2[i]);
          lte = std::max(lte, std::fabs(d2));
        }
        if (lte > options.lte_vtol && halvings < options.max_step_halvings) {
          ++halvings;
          dt *= 0.5;
          continue;  // reject: retry the point with a smaller step
        }
        // Accepted: pick the next step from the error headroom.
        if (lte < 0.25 * options.lte_vtol)
          dt_next = std::min(dt * 2.0, dt0 * options.max_dt_growth);
        else
          dt_next = dt;
      }

      if (ok) {
        prev2 = prev;
        dt_prev = dt;
        have_two = true;
        x = trial;
        update_cap_history(x, prev, geq_scale, options.method);
        t += dt;
        ++result.steps;
        record(t);
        break;
      }
      if (++halvings > options.max_step_halvings)
        throw NumericalError(StatusCode::kNewtonDivergence,
                             "Simulator: transient Newton failed at t=" +
                                 std::to_string(t));
      dt *= 0.5;
      if (options.adaptive) dt_next = dt;
    }
  }
  return result;
}

}  // namespace xtv
