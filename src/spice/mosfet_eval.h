// Level-1 (Shichman–Hodges) MOSFET evaluation with analytic derivatives.
//
// The paper's golden reference is transistor-level SPICE; Level-1 devices
// give realistic nonlinear driver I-V behaviour (cutoff / triode /
// saturation, channel-length modulation) at 0.25 µm-like parameters while
// keeping the Newton stamps analytic. Body effect is not modeled (bulk is
// assumed tied to the source rail, the standard-cell case).
#pragma once

#include "netlist/circuit.h"

namespace xtv {

/// Operating-point evaluation of a MOSFET: drain current and small-signal
/// conductances, in the device's own (possibly source/drain-swapped)
/// orientation already mapped back to the circuit terminals.
struct MosfetOp {
  double ids = 0.0;  ///< current flowing drain -> source (A), sign per terminal order
  double gm = 0.0;   ///< d ids / d vgs (S)
  double gds = 0.0;  ///< d ids / d vds (S)
};

/// Evaluates the device at terminal voltages (vd, vg, vs) relative to
/// ground. Handles PMOS by internal sign reflection and drain/source swap
/// for vds < 0 (the level-1 model is symmetric).
MosfetOp eval_mosfet(const MosModel& model, double w, double l, double vd,
                     double vg, double vs);

/// Gate-side parasitic capacitances used when stamping the device:
/// lumped Cgs/Cgd including overlap, and a drain junction cap.
struct MosfetCaps {
  double cgs = 0.0;
  double cgd = 0.0;
  double cdb = 0.0;
};

/// Computes the fixed capacitances for a device instance. The channel
/// charge is split 50/50 between source and drain sides (constant-cap
/// approximation adequate for delay/glitch work at this abstraction).
MosfetCaps mosfet_caps(const MosModel& model, double w, double l);

}  // namespace xtv
