// SPICE-class circuit simulator: Newton–Raphson DC and transient analysis
// over sparse MNA.
//
// This is the "golden" engine the paper compares against (its role is
// played by commercial SPICE in the original work): it solves the full
// nonlinear circuit — extracted RC parasitics, Level-1 MOSFET drivers,
// table-model terminations — with no order reduction. The crosstalk
// verifier (src/core) uses it both for accuracy audits and to characterize
// cells (src/cells).
#pragma once

#include <vector>

#include "linalg/sparse_lu.h"
#include "linalg/sparse_matrix.h"
#include "netlist/circuit.h"
#include "spice/waveform.h"
#include "util/deadline.h"

namespace xtv {

/// Integration method for transient analysis.
enum class IntegrationMethod {
  kBackwardEuler,  ///< L-stable, first order
  kTrapezoidal,    ///< A-stable, second order (default)
};

struct TransientOptions {
  double tstop = 0.0;             ///< end time (s); required > 0
  double dt = 0.0;                ///< fixed step (s); 0 = tstop/2000
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  double v_abstol = 1e-6;         ///< Newton convergence: max |dV| (V)
  double v_reltol = 1e-6;         ///< plus reltol * |V|
  int max_newton = 60;            ///< iterations per time point
  double max_newton_dv = 0.6;     ///< per-iteration voltage-step clamp (V)
  int max_step_halvings = 8;      ///< local dt refinement on Newton failure
  /// Reuse one factorization for linear circuits (an optimization a
  /// general-purpose SPICE does not make — disable to benchmark the
  /// classic refactor-every-iteration behavior).
  bool exploit_linearity = true;

  /// Local-truncation-error adaptive stepping: after each accepted point
  /// the maximum second difference of the node voltages estimates the LTE;
  /// the step shrinks when it exceeds `lte_vtol` and grows (up to
  /// `max_dt_growth` x the base dt) when it is comfortably below. Keeps the
  /// fixed-step behavior when false (default).
  bool adaptive = false;
  double lte_vtol = 5e-3;      ///< volts of estimated LTE per step
  double max_dt_growth = 16.0; ///< cap on dt relative to the base step

  /// Cooperative cancellation: polled once per Newton iteration (a full
  /// sparse refactor can dominate a step, so per-step polling would be
  /// too coarse); an expired/cancelled token raises kDeadlineExceeded.
  /// Null = never cancelled. Not owned; must outlive the run.
  const CancelToken* cancel = nullptr;
};

struct TransientResult {
  std::vector<Waveform> probes;        ///< parallel to the probe node list
  std::size_t steps = 0;               ///< accepted time points
  std::size_t newton_iterations = 0;   ///< total Newton iterations
};

/// One simulator instance is bound to one circuit; construction analyzes
/// the MNA structure (unknown numbering, sparsity, fill ordering).
class Simulator {
 public:
  /// `gmin` is the global node-to-ground regularization conductance; it
  /// keeps otherwise-floating nodes (cap-only internal nodes at DC,
  /// undriven tri-state buses) well-posed, exactly as production SPICE
  /// does.
  explicit Simulator(const Circuit& circuit, double gmin = 1e-12);

  /// Solves the DC operating point (capacitors open, sources at t=0).
  /// Returns node voltages indexed by node id (entry 0 — ground — is 0).
  /// Falls back to gmin stepping when plain Newton diverges; throws
  /// std::runtime_error if the circuit cannot be solved.
  Vector dc_operating_point();

  /// DC operating point plus branch currents.
  struct DcResult {
    Vector node_voltages;      ///< indexed by node id; ground entry is 0
    Vector vsource_currents;   ///< one per voltage source, in circuit order:
                               ///< positive flowing pos -> (through the
                               ///< source) -> neg, the SPICE convention
  };
  DcResult dc_full();

  /// Runs a transient from the DC operating point. `probe_nodes` selects
  /// which node voltages are recorded.
  TransientResult transient(const TransientOptions& options,
                            const std::vector<int>& probe_nodes);

 private:
  struct CapState {
    int a = 0;
    int b = 0;
    double farads = 0.0;
    double i_prev = 0.0;  ///< branch current at the previous accepted point
  };

  // Unknown layout: [node voltages for nodes 1..N-1][vsource currents].
  std::size_t unknown_count() const;
  int node_unknown(int node) const { return node - 1; }  // node > 0

  /// Assembles J and rhs at time t around trial unknowns x. `geq_scale`
  /// (1/dt-ish) == 0 means DC (capacitors open). Companion history terms
  /// come from prev_x/cap state.
  void assemble(const Vector& x, double t, double geq_scale,
                IntegrationMethod method, const Vector& prev_x, double gmin,
                TripletList& jac, Vector& rhs) const;

  /// Runs Newton at a fixed (t, companion) configuration; returns true on
  /// convergence, updating x in place.
  bool newton_solve(Vector& x, double t, double geq_scale,
                    IntegrationMethod method, const Vector& prev_x, double gmin,
                    const TransientOptions& options, std::size_t& iterations);

  /// Extracts the voltage of `node` from the unknown vector.
  double voltage(const Vector& x, int node) const {
    return node == Circuit::ground() ? 0.0
                                     : x[static_cast<std::size_t>(node_unknown(node))];
  }

  /// Updates capacitor branch-current history after an accepted step.
  void update_cap_history(const Vector& x, const Vector& prev_x,
                          double geq_scale, IntegrationMethod method);

  const Circuit& circuit_;
  double gmin_;
  std::vector<CapState> caps_;  ///< explicit caps + expanded MOSFET caps
  std::vector<std::size_t> fill_order_;
  std::unique_ptr<SparseLu> lu_;  ///< reused across refactors once built
  bool is_linear_ = false;        ///< no MOSFETs/terminations: one factor per dt
  double lu_geq_scale_ = -1.0;    ///< geq_scale the cached factorization used
  double lu_gmin_ = -1.0;         ///< gmin the cached factorization used
};

}  // namespace xtv
