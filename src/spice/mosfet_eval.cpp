#include "spice/mosfet_eval.h"

#include <algorithm>
#include <cmath>

namespace xtv {

namespace {

// Core NMOS-convention evaluation with vds >= 0 assumed.
MosfetOp eval_nmos_forward(double beta, double vt, double lambda, double vgs,
                           double vds) {
  MosfetOp op;
  const double vgst = vgs - vt;
  if (vgst <= 0.0) {
    // Cutoff: keep a whisper of subthreshold-like conductance out of the
    // stamps entirely; gmin regularization is handled by the simulator.
    return op;
  }
  const double clm = 1.0 + lambda * vds;
  if (vds < vgst) {
    // Triode.
    op.ids = beta * (vgst * vds - 0.5 * vds * vds) * clm;
    op.gm = beta * vds * clm;
    op.gds = beta * ((vgst - vds) * clm +
                     (vgst * vds - 0.5 * vds * vds) * lambda);
  } else {
    // Saturation.
    const double i0 = 0.5 * beta * vgst * vgst;
    op.ids = i0 * clm;
    op.gm = beta * vgst * clm;
    op.gds = i0 * lambda;
  }
  return op;
}

}  // namespace

MosfetOp eval_mosfet(const MosModel& model, double w, double l, double vd,
                     double vg, double vs) {
  const double beta = model.kp * (w / l);
  const double sign = model.type == MosType::kNmos ? 1.0 : -1.0;

  // Map PMOS onto the NMOS equations by reflecting all voltages.
  double nvd = sign * vd;
  double nvg = sign * vg;
  double nvs = sign * vs;

  // The level-1 channel is symmetric: for vds < 0 exchange drain/source.
  bool swapped = false;
  if (nvd < nvs) {
    std::swap(nvd, nvs);
    swapped = true;
  }

  const MosfetOp fwd = eval_nmos_forward(beta, model.vt0, model.lambda,
                                         nvg - nvs, nvd - nvs);

  MosfetOp out;
  if (!swapped) {
    out.ids = sign * fwd.ids;
    out.gm = fwd.gm;
    out.gds = fwd.gds;
  } else {
    // With drain/source exchanged, the original-orientation current is
    //   ids(vgs, vds) = -I(vgs - vds, -vds)
    // where I is the forward model, giving
    //   d ids / d vgs = -gm_fwd
    //   d ids / d vds = gm_fwd + gds_fwd.
    out.ids = -sign * fwd.ids;
    out.gm = -fwd.gm;
    out.gds = fwd.gm + fwd.gds;
  }
  return out;
}

MosfetCaps mosfet_caps(const MosModel& model, double w, double l) {
  MosfetCaps caps;
  const double channel = model.cox * w * l;
  caps.cgs = 0.5 * channel + model.cov * w;
  caps.cgd = 0.5 * channel + model.cov * w;
  // Drain junction proxy: perimeter-ish area w * 3l.
  caps.cdb = model.cj * w * 3.0 * l;
  return caps;
}

}  // namespace xtv
