# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_dense_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_mor[1]_include.cmake")
include("/root/repo/build/tests/test_cells[1]_include.cmake")
include("/root/repo/build/tests/test_extract[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_chipgen[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
