# Empty compiler generated dependencies file for test_sparse_linalg.
# This may be replaced when dependencies are built.
