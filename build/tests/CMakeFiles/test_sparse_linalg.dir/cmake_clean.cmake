file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_linalg.dir/test_sparse_linalg.cpp.o"
  "CMakeFiles/test_sparse_linalg.dir/test_sparse_linalg.cpp.o.d"
  "test_sparse_linalg"
  "test_sparse_linalg.pdb"
  "test_sparse_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
