# Empty compiler generated dependencies file for test_dense_linalg.
# This may be replaced when dependencies are built.
