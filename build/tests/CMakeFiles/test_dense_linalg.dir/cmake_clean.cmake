file(REMOVE_RECURSE
  "CMakeFiles/test_dense_linalg.dir/test_dense_linalg.cpp.o"
  "CMakeFiles/test_dense_linalg.dir/test_dense_linalg.cpp.o.d"
  "test_dense_linalg"
  "test_dense_linalg.pdb"
  "test_dense_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
