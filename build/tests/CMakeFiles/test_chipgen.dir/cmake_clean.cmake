file(REMOVE_RECURSE
  "CMakeFiles/test_chipgen.dir/test_chipgen.cpp.o"
  "CMakeFiles/test_chipgen.dir/test_chipgen.cpp.o.d"
  "test_chipgen"
  "test_chipgen.pdb"
  "test_chipgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chipgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
