# Empty dependencies file for test_chipgen.
# This may be replaced when dependencies are built.
