# Empty dependencies file for test_mor.
# This may be replaced when dependencies are built.
