file(REMOVE_RECURSE
  "CMakeFiles/test_mor.dir/test_mor.cpp.o"
  "CMakeFiles/test_mor.dir/test_mor.cpp.o.d"
  "test_mor"
  "test_mor.pdb"
  "test_mor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
