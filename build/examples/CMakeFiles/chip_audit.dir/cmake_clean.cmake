file(REMOVE_RECURSE
  "CMakeFiles/chip_audit.dir/chip_audit.cpp.o"
  "CMakeFiles/chip_audit.dir/chip_audit.cpp.o.d"
  "chip_audit"
  "chip_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
