# Empty compiler generated dependencies file for chip_audit.
# This may be replaced when dependencies are built.
