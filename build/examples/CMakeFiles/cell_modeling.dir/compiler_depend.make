# Empty compiler generated dependencies file for cell_modeling.
# This may be replaced when dependencies are built.
