file(REMOVE_RECURSE
  "CMakeFiles/cell_modeling.dir/cell_modeling.cpp.o"
  "CMakeFiles/cell_modeling.dir/cell_modeling.cpp.o.d"
  "cell_modeling"
  "cell_modeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
