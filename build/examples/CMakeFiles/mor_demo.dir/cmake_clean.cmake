file(REMOVE_RECURSE
  "CMakeFiles/mor_demo.dir/mor_demo.cpp.o"
  "CMakeFiles/mor_demo.dir/mor_demo.cpp.o.d"
  "mor_demo"
  "mor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
