# Empty compiler generated dependencies file for mor_demo.
# This may be replaced when dependencies are built.
