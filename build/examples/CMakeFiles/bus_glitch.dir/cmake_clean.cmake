file(REMOVE_RECURSE
  "CMakeFiles/bus_glitch.dir/bus_glitch.cpp.o"
  "CMakeFiles/bus_glitch.dir/bus_glitch.cpp.o.d"
  "bus_glitch"
  "bus_glitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_glitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
