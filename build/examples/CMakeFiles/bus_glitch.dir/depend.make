# Empty dependencies file for bus_glitch.
# This may be replaced when dependencies are built.
