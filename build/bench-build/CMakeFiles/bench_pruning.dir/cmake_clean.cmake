file(REMOVE_RECURSE
  "../bench/bench_pruning"
  "../bench/bench_pruning.pdb"
  "CMakeFiles/bench_pruning.dir/bench_pruning.cpp.o"
  "CMakeFiles/bench_pruning.dir/bench_pruning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
