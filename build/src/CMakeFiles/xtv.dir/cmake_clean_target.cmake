file(REMOVE_RECURSE
  "libxtv.a"
)
