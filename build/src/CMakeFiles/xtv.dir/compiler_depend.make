# Empty compiler generated dependencies file for xtv.
# This may be replaced when dependencies are built.
