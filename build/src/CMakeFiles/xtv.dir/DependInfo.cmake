
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/cell_library.cpp" "src/CMakeFiles/xtv.dir/cells/cell_library.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/cells/cell_library.cpp.o.d"
  "/root/repo/src/cells/characterize.cpp" "src/CMakeFiles/xtv.dir/cells/characterize.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/cells/characterize.cpp.o.d"
  "/root/repo/src/cells/driver_models.cpp" "src/CMakeFiles/xtv.dir/cells/driver_models.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/cells/driver_models.cpp.o.d"
  "/root/repo/src/cells/table2d.cpp" "src/CMakeFiles/xtv.dir/cells/table2d.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/cells/table2d.cpp.o.d"
  "/root/repo/src/cells/tech.cpp" "src/CMakeFiles/xtv.dir/cells/tech.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/cells/tech.cpp.o.d"
  "/root/repo/src/cells/transistor_driver.cpp" "src/CMakeFiles/xtv.dir/cells/transistor_driver.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/cells/transistor_driver.cpp.o.d"
  "/root/repo/src/chipgen/dsp_chip.cpp" "src/CMakeFiles/xtv.dir/chipgen/dsp_chip.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/chipgen/dsp_chip.cpp.o.d"
  "/root/repo/src/core/analytic_estimates.cpp" "src/CMakeFiles/xtv.dir/core/analytic_estimates.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/core/analytic_estimates.cpp.o.d"
  "/root/repo/src/core/delay_analyzer.cpp" "src/CMakeFiles/xtv.dir/core/delay_analyzer.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/core/delay_analyzer.cpp.o.d"
  "/root/repo/src/core/glitch_analyzer.cpp" "src/CMakeFiles/xtv.dir/core/glitch_analyzer.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/core/glitch_analyzer.cpp.o.d"
  "/root/repo/src/core/pruning.cpp" "src/CMakeFiles/xtv.dir/core/pruning.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/core/pruning.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "src/CMakeFiles/xtv.dir/core/verifier.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/core/verifier.cpp.o.d"
  "/root/repo/src/extract/extractor.cpp" "src/CMakeFiles/xtv.dir/extract/extractor.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/extract/extractor.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/CMakeFiles/xtv.dir/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/dense_lu.cpp" "src/CMakeFiles/xtv.dir/linalg/dense_lu.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/linalg/dense_lu.cpp.o.d"
  "/root/repo/src/linalg/dense_matrix.cpp" "src/CMakeFiles/xtv.dir/linalg/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/linalg/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/ordering.cpp" "src/CMakeFiles/xtv.dir/linalg/ordering.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/linalg/ordering.cpp.o.d"
  "/root/repo/src/linalg/sparse_lu.cpp" "src/CMakeFiles/xtv.dir/linalg/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/linalg/sparse_lu.cpp.o.d"
  "/root/repo/src/linalg/sparse_matrix.cpp" "src/CMakeFiles/xtv.dir/linalg/sparse_matrix.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/linalg/sparse_matrix.cpp.o.d"
  "/root/repo/src/linalg/sym_eigen.cpp" "src/CMakeFiles/xtv.dir/linalg/sym_eigen.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/linalg/sym_eigen.cpp.o.d"
  "/root/repo/src/mor/reduced_sim.cpp" "src/CMakeFiles/xtv.dir/mor/reduced_sim.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/mor/reduced_sim.cpp.o.d"
  "/root/repo/src/mor/sympvl.cpp" "src/CMakeFiles/xtv.dir/mor/sympvl.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/mor/sympvl.cpp.o.d"
  "/root/repo/src/netlist/circuit.cpp" "src/CMakeFiles/xtv.dir/netlist/circuit.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/netlist/circuit.cpp.o.d"
  "/root/repo/src/netlist/rc_network.cpp" "src/CMakeFiles/xtv.dir/netlist/rc_network.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/netlist/rc_network.cpp.o.d"
  "/root/repo/src/netlist/spice_deck.cpp" "src/CMakeFiles/xtv.dir/netlist/spice_deck.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/netlist/spice_deck.cpp.o.d"
  "/root/repo/src/spice/mosfet_eval.cpp" "src/CMakeFiles/xtv.dir/spice/mosfet_eval.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/spice/mosfet_eval.cpp.o.d"
  "/root/repo/src/spice/simulator.cpp" "src/CMakeFiles/xtv.dir/spice/simulator.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/spice/simulator.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "src/CMakeFiles/xtv.dir/spice/waveform.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/spice/waveform.cpp.o.d"
  "/root/repo/src/sta/timing.cpp" "src/CMakeFiles/xtv.dir/sta/timing.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/sta/timing.cpp.o.d"
  "/root/repo/src/util/fault_injection.cpp" "src/CMakeFiles/xtv.dir/util/fault_injection.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/util/fault_injection.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/xtv.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/util/log.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/CMakeFiles/xtv.dir/util/prng.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/util/prng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/xtv.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/xtv.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/xtv.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
