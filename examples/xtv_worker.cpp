// Remote shard worker for the leased fan-out protocol (DESIGN.md §14).
//
// A worker is a dumb, stateless analysis box: it listens on TCP, accepts
// one coordinator (chip_audit --workers, or an xtv_serve daemon) at a
// time, rebuilds the job's design from the spec replayed in the setup
// frame, refuses the job unless its own options-result hash matches the
// coordinator's (wrong-config results must never merge), and then
// analyzes leased work units until the connection closes. All failure
// policy — lease expiry, reassignment, quarantine, concession — lives on
// the coordinator; a worker that dies mid-unit simply stops answering.
//
// Build & run:  ./build/examples/xtv_worker [flags]
//   --listen HOST:PORT      listen address (default 127.0.0.1:0 = ephemeral)
//   --endpoint-file PATH    atomically publish the bound host:port here
//                           (how scripts discover an ephemeral port)
//   --cell-cache PATH       cell characterization cache file (default:
//                           xtv_cells.cache next to the binary)
//   --max-coordinators N    serve N coordinator connections, then exit
//                           (default 0 = serve forever)
#include <cstdio>
#include <cstring>
#include <string>

#include "flags.h"
#include "serve/remote.h"

using namespace xtv;

int main(int argc, char** argv) {
  serve::WorkerOptions options;

  // Same default cell-cache policy as chip_audit: next to the binary, so
  // a fleet launched from one build directory shares one warm cache.
  options.cell_cache = "xtv_cells.cache";
  {
    std::string self = argv[0] ? argv[0] : "";
    const std::size_t slash = self.rfind('/');
    if (slash != std::string::npos)
      options.cell_cache = self.substr(0, slash + 1) + options.cell_cache;
  }

  flags::SeenFlags seen;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    seen.check(arg);
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--listen") == 0) {
      options.listen = value(arg);
    } else if (std::strcmp(arg, "--endpoint-file") == 0) {
      options.endpoint_file = value(arg);
    } else if (std::strcmp(arg, "--cell-cache") == 0) {
      options.cell_cache = value(arg);
    } else if (std::strcmp(arg, "--max-coordinators") == 0) {
      options.max_coordinators = flags::parse_size(arg, value(arg));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
  }

  return serve::run_worker(options);
}
