// Tri-state bus scenario (paper Section 2): a long bus net with several
// tri-state drivers of different strengths, attacked by neighbors. The
// conservative rule — analyze with the STRONGEST bus driver holding —
// bounds the optimistic answers the weaker drivers would give, and the
// example also contrasts the three driver-model abstractions on the same
// cluster.
//
// Build & run:  ./build/examples/bus_glitch
#include <cstdio>
#include <string>
#include <vector>

#include "core/glitch_analyzer.h"
#include "util/table.h"
#include "util/units.h"

using namespace xtv;

int main() {
  const Technology tech = Technology::default_250nm();
  CellLibrary library(tech);
  CharacterizedLibrary chars(library);
  chars.load("xtv_cells.cache");
  Extractor extractor(tech);
  GlitchAnalyzer analyzer(extractor, chars);

  // A 2 mm bus flanked by two switching neighbors.
  auto bus_victim = [&](const std::string& driver) {
    VictimSpec victim;
    victim.route = {2000 * units::um, 0.0};
    victim.driver_cell = driver;
    victim.held_high = true;
    victim.receiver_cap = 30 * units::fF;  // several receivers tap the bus
    return victim;
  };
  std::vector<AggressorSpec> aggressors;
  for (int k = 0; k < 2; ++k) {
    AggressorSpec agg;
    agg.route = {1500 * units::um, 0.0};
    agg.driver_cell = "BUF_X8";
    agg.rising = false;
    agg.input_slew = 0.15 * units::ns;
    agg.receiver_cap = 10 * units::fF;
    agg.run = {0, 0, 1200 * units::um, 0.0, 200 * units::um, 100 * units::um};
    aggressors.push_back(agg);
  }

  GlitchAnalysisOptions options;
  options.driver_model = DriverModelKind::kNonlinearTable;
  options.align_aggressors = false;

  // --- The strongest-driver rule across the bus's driver set. ---
  const std::vector<std::string> bus_drivers = {"TRIBUF_X1", "TRIBUF_X4",
                                                "TRIBUF_X16"};
  std::printf("== Tri-state bus: glitch vs which driver holds the bus ==\n\n");
  AsciiTable table({"holding driver", "glitch peak (V)", "% of Vdd"});
  double strongest_peak = 0.0;
  for (const auto& driver : bus_drivers) {
    const GlitchResult res =
        analyzer.analyze(bus_victim(driver), aggressors, options);
    table.add_row({driver, AsciiTable::num(res.peak, 3),
                   AsciiTable::num(100.0 * -res.peak / tech.vdd, 1)});
    strongest_peak = res.peak;  // last = strongest
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("conservative audit verdict (strongest driver, the paper's "
              "rule): %+.3f V\n\n", strongest_peak);

  // --- Driver-model abstraction comparison on the strongest driver. ---
  std::printf("== Driver-model comparison on the same cluster ==\n\n");
  AsciiTable models({"model", "glitch peak (V)", "cpu (ms)"});
  const VictimSpec victim = bus_victim("TRIBUF_X16");
  for (auto [kind, name] :
       {std::pair{DriverModelKind::kLinearResistor, "linear resistor (4.1)"},
        std::pair{DriverModelKind::kNonlinearTable, "nonlinear table (4.2)"}}) {
    options.driver_model = kind;
    const GlitchResult res = analyzer.analyze(victim, aggressors, options);
    models.add_row({name, AsciiTable::num(res.peak, 3),
                    AsciiTable::num(res.cpu_seconds * 1e3, 1)});
  }
  options.driver_model = DriverModelKind::kTransistor;
  const GlitchResult golden = analyzer.analyze_spice(victim, aggressors, options);
  models.add_row({"transistor-level SPICE", AsciiTable::num(golden.peak, 3),
                  AsciiTable::num(golden.cpu_seconds * 1e3, 1)});
  std::printf("%s", models.to_string().c_str());
  chars.save("xtv_cells.cache");
  return 0;
}
