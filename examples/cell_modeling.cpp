// Cell pre-characterization walkthrough (paper Section 4): pick a cell,
// run the one-time characterization against the transistor netlist, and
// inspect everything it produces — NLDM timing tables, the deduced linear
// drive resistance, the non-linear I(Vin, Vout) surface, and the dynamic
// warp calibration. Also exports the cell's transistor netlist as a SPICE
// deck.
//
// Build & run:  ./build/examples/cell_modeling [CELL_NAME]
#include <cstdio>
#include <string>

#include "cells/cell_library.h"
#include "cells/characterize.h"
#include "netlist/spice_deck.h"
#include "util/table.h"
#include "util/units.h"

using namespace xtv;

int main(int argc, char** argv) {
  const std::string cell_name = argc > 1 ? argv[1] : "NAND2_X4";
  const Technology tech = Technology::default_250nm();
  CellLibrary library(tech);
  const CellMaster& master = library.by_name(cell_name);

  std::printf("== %s: %s, drive X%g, %s ==\n", master.name().c_str(),
              family_name(master.family()).c_str(), master.drive(),
              master.inverting() ? "inverting" : "non-inverting");
  std::printf("switching pin %s; input cap %.2f fF\n",
              master.switching_pin().c_str(),
              master.input_cap(master.switching_pin()) / units::fF);

  // Export the transistor netlist (on a standalone bench) as a SPICE deck.
  {
    Circuit bench;
    const int vdd = bench.add_node("vdd");
    std::map<std::string, int> pins;
    for (const auto& pin : master.input_pins()) pins[pin] = bench.add_node(pin);
    pins[master.output_pin()] = bench.add_node(master.output_pin());
    master.instantiate(bench, pins, vdd);
    std::printf("\n-- transistor netlist (SPICE deck) --\n%s\n",
                write_spice_deck(bench, master.name()).c_str());
  }

  std::printf("characterizing (one-time task)...\n");
  const CellModel model = characterize_cell(master, tech);

  std::printf("\n-- NLDM delay table, output rising (ns) --\n");
  AsciiTable delays({"slew \\ load", "5 fF", "20 fF", "80 fF", "240 fF"});
  for (double slew : model.rise.delay.x_axis()) {
    std::vector<std::string> row = {AsciiTable::num_scaled(slew, units::ns, "ns", 2)};
    for (double load : model.rise.delay.y_axis())
      row.push_back(AsciiTable::num(model.rise.delay.lookup(slew, load) / units::ns, 3));
    delays.add_row(row);
  }
  std::printf("%s", delays.to_string().c_str());

  std::printf("\nlinear drive resistance (Section 4.1 model): rise %.0f ohm, "
              "fall %.0f ohm\n", model.drive_resistance_rise,
              model.drive_resistance_fall);
  std::printf("intrinsic output cap: %.2f fF\n", model.output_cap / units::fF);

  std::printf("\n-- I(Vin, Vout) surface sample (mA), Section 4.2 model --\n");
  AsciiTable surface({"Vin \\ Vout", "0.0 V", "0.75 V", "1.5 V", "2.25 V", "3.0 V"});
  for (double vin : {0.0, 0.75, 1.5, 2.25, 3.0}) {
    std::vector<std::string> row = {AsciiTable::num(vin, 2)};
    for (double vout : {0.0, 0.75, 1.5, 2.25, 3.0})
      row.push_back(AsciiTable::num(model.iv_surface.lookup(vin, vout) * 1e3, 3));
    surface.add_row(row);
  }
  std::printf("%s", surface.to_string().c_str());

  const CellModel::Warp warp = model.warp(true, 0.2e-9, 40e-15);
  std::printf("\ndynamic warp @ (0.2 ns, 40 fF), output rising: "
              "shift %.1f ps, stretch %.2f\n", warp.shift / units::ps, warp.stretch);
  return 0;
}
