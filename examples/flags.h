// Typed command-line value parsing shared by the example CLIs.
//
// The atoi/atof idiom silently maps garbage to 0 — "--processes 0x2"
// became a serial run and "--audit-fraction 1.5" an out-of-range lottery.
// These helpers parse the FULL token and range-check it, exiting with the
// usage-error code (2) and a "usage error:" prefix on anything else, so a
// typo'd flag fails loudly instead of quietly changing the run.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>
#include <string>

namespace xtv {
namespace flags {

[[noreturn]] inline void usage_error(const char* flag, const char* value,
                                     const char* want) {
  std::fprintf(stderr, "usage error: %s expects %s, got \"%s\"\n", flag,
               want, value);
  std::exit(2);
}

/// Rejects repeated flags: "--threads 2 --threads 8" is almost always a
/// copy-paste error, and silently letting the last one win hides it.
/// Call check() on every argv token; only "--"-prefixed tokens count.
class SeenFlags {
 public:
  void check(const char* arg) {
    if (!arg || arg[0] != '-' || arg[1] != '-') return;
    if (!seen_.insert(arg).second) {
      std::fprintf(stderr, "usage error: duplicate flag %s\n", arg);
      std::exit(2);
    }
  }

 private:
  std::set<std::string> seen_;
};

/// Whole-token strtod; rejects trailing junk and empty values.
inline double parse_double(const char* flag, const char* value,
                           double min_incl =
                               -std::numeric_limits<double>::infinity(),
                           double max_incl =
                               std::numeric_limits<double>::infinity(),
                           const char* want = "a number") {
  if (!value || !*value) usage_error(flag, value ? value : "", want);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (errno != 0 || end != value + std::strlen(value) || v != v)
    usage_error(flag, value, want);
  if (v < min_incl || v > max_incl) usage_error(flag, value, want);
  return v;
}

/// Whole-token base-10 size parse with an inclusive floor (use 1 for
/// flags where 0 is meaningless, e.g. --processes).
inline std::size_t parse_size(const char* flag, const char* value,
                              std::size_t min_incl = 0,
                              const char* want = "a non-negative integer") {
  if (!value || !*value) usage_error(flag, value ? value : "", want);
  // strtoull wraps negatives around; reject the sign explicitly.
  if (value[0] == '-' || value[0] == '+') usage_error(flag, value, want);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (errno != 0 || end != value + std::strlen(value))
    usage_error(flag, value, want);
  if (v < min_incl) usage_error(flag, value, want);
  return static_cast<std::size_t>(v);
}

/// Whole-token signed integer parse.
inline long parse_long(const char* flag, const char* value,
                       long min_incl = std::numeric_limits<long>::min(),
                       const char* want = "an integer") {
  if (!value || !*value) usage_error(flag, value ? value : "", want);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (errno != 0 || end != value + std::strlen(value) || v < min_incl)
    usage_error(flag, value, want);
  return v;
}

}  // namespace flags
}  // namespace xtv
