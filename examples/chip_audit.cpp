// Chip-level crosstalk audit — the paper's end-to-end methodology on a
// synthetic DSP-class design: generate the design, build the chip-level
// coupling database, prune it into clusters, analyze every victim with the
// MOR engine under timing-window and logic-correlation filtering, and
// report glitch violations.
//
// Build & run:  ./build/examples/chip_audit [net_count] [flags]
//   --threads N               worker threads (default 1 = serial)
//   --cluster-deadline-ms MS  per-cluster wall-clock budget (0 = unlimited)
//   --cluster-mem-mb MB       per-cluster memory budget (0 = unlimited)
//   --global-mem-soft-mb MB   soft RSS limit; sheds largest queued clusters
//   --journal PATH            append completed victims to a crash-safe journal
//   --resume                  skip victims already in the journal (needs --journal)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace xtv;

int main(int argc, char** argv) {
  const Technology tech = Technology::default_250nm();
  CellLibrary library(tech);
  CharacterizedLibrary chars(library);
  chars.load("xtv_cells.cache");
  Extractor extractor(tech);

  DspChipOptions chip_options;
  chip_options.net_count = 800;
  VerifierOptions options;
  options.glitch_threshold = 0.10;          // flag peaks above 10% of Vdd
  options.glitch.align_aggressors = true;   // worst-case alignment search
  options.glitch.tstop = 4e-9;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--threads") == 0) {
      options.threads = static_cast<std::size_t>(std::atoi(value(arg)));
    } else if (std::strcmp(arg, "--cluster-deadline-ms") == 0) {
      options.cluster_deadline_ms = std::atof(value(arg));
    } else if (std::strcmp(arg, "--cluster-mem-mb") == 0) {
      options.cluster_mem_mb = std::atof(value(arg));
    } else if (std::strcmp(arg, "--global-mem-soft-mb") == 0) {
      options.global_mem_soft_mb = std::atof(value(arg));
    } else if (std::strcmp(arg, "--journal") == 0) {
      options.journal_path = value(arg);
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (arg[0] != '-') {
      chip_options.net_count = static_cast<std::size_t>(std::atoi(arg));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
  }
  if (options.resume && options.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal PATH\n");
    return 2;
  }

  std::printf("generating DSP-like design: %zu nets...\n", chip_options.net_count);
  const ChipDesign design = generate_dsp_chip(library, chip_options);

  std::size_t buses = 0, latches = 0;
  for (const auto& net : design.nets) {
    if (!net.bus_drivers.empty()) ++buses;
    if (net.latch_input) ++latches;
  }
  std::printf("  %zu coupling runs, %zu tri-state buses, %zu latch inputs, "
              "%zu complementary pairs\n",
              design.couplings.size(), buses, latches,
              design.complementary_pairs.size());
  if (options.threads > 1)
    std::printf("  %zu worker threads\n", options.threads);
  if (options.cluster_deadline_ms > 0.0)
    std::printf("  per-cluster budget %.1f ms\n", options.cluster_deadline_ms);
  if (options.cluster_mem_mb > 0.0)
    std::printf("  per-cluster memory budget %.3f MiB\n", options.cluster_mem_mb);
  if (options.global_mem_soft_mb > 0.0)
    std::printf("  soft RSS limit %.1f MiB\n", options.global_mem_soft_mb);
  if (!options.journal_path.empty())
    std::printf("  journal %s%s\n", options.journal_path.c_str(),
                options.resume ? " (resuming)" : "");

  ChipVerifier verifier(extractor, chars);
  VerificationReport report;
  try {
    report = verifier.verify(design, options);
  } catch (const std::exception& e) {
    // Configuration errors (e.g. --resume against a journal written under
    // different options) are reported, not crashed on.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("\n%s", report.to_string().c_str());
  std::printf("robustness: eligible=%zu analyzed=%zu screened=%zu retried=%zu "
              "fallback=%zu (deadline=%zu resource=%zu) failed=%zu\n",
              report.victims_eligible, report.victims_analyzed,
              report.victims_screened_out, report.victims_retried,
              report.victims_fallback, report.victims_deadline_bound,
              report.victims_resource_bound, report.victims_failed);
  for (const auto& f : report.findings) {
    if (f.status == FindingStatus::kAnalyzed) continue;
    std::printf("  net %zu: %s (%zu retries%s%s)\n", f.net,
                finding_status_name(f.status), f.retries,
                f.error.empty() ? "" : ", first error: ",
                f.error.c_str());
  }

  // Distribution of glitch magnitudes across the chip.
  Histogram hist(0.0, 1.0, 10);
  for (const auto& f : report.findings) hist.add(f.peak_fraction);
  std::printf("\nglitch peak distribution (fraction of Vdd):\n%s",
              hist.to_ascii(40, 2).c_str());

  SummaryStats orders;
  for (const auto& f : report.findings)
    orders.add(static_cast<double>(f.reduced_order));
  std::printf("\nreduced model orders: %s\n", orders.to_string(1).c_str());
  std::printf("wall time: %.1f s (%.1f s cpu) for %zu analyzed victims\n",
              report.wall_seconds, report.total_cpu_seconds,
              report.victims_analyzed);
  chars.save("xtv_cells.cache");
  return 0;
}
