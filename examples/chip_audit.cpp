// Chip-level crosstalk audit — the paper's end-to-end methodology on a
// synthetic DSP-class design: generate the design, build the chip-level
// coupling database, prune it into clusters, analyze every victim with the
// MOR engine under timing-window and logic-correlation filtering, and
// report glitch violations.
//
// Build & run:  ./build/examples/chip_audit [net_count] [flags]
//   --threads N               worker threads (default 1 = serial)
//   --processes N             worker *processes* (default 0 = in-process path);
//                             each forked worker runs a contiguous victim
//                             shard crash-isolated from the others
//   --shard-heartbeat-ms MS   worker heartbeat period; 10x silence presumes a
//                             wedged worker and kills it (0 = stall check off)
//   --max-shard-restarts N    worker respawns per shard before its remaining
//                             victims are conceded as shard-crashed
//   --cluster-deadline-ms MS  per-cluster wall-clock budget (0 = unlimited)
//   --cluster-mem-mb MB       per-cluster memory budget (0 = unlimited)
//   --global-mem-soft-mb MB   soft RSS limit; sheds largest queued clusters
//   --journal PATH            append completed victims to a crash-safe journal
//   --resume                  skip victims already in the journal (needs --journal)
//   --model-cache-mb MB       reduced-model cache budget (default 64; repeated
//                             cluster pencils reuse their certified model)
//   --no-model-cache          disable the reduced-model cache
//   --canonical-cache         permutation/tolerance-invariant cache keys; a
//                             tolerant hit is reused only after its accuracy
//                             certificate re-passes against the requesting
//                             cluster's exact matrices
//   --canonical-cache-tol T   canonical key quantization tolerance (default
//                             1e-6 relative)
//   --batch-width W           lockstep lanes per reduced-transient batch
//                             (default 1 = scalar; scheduling-only, findings
//                             are bit-identical at any width)
//   --cell-cache PATH         cell characterization cache file (default:
//                             xtv_cells.cache next to the binary)
//   --replicate-rows R        tile the design out of R identical rows
//   --cluster-repeat-skew S   jitter replicated-row receiver loads by a
//                             relative factor up to S (defeats exact cache
//                             fingerprints; pairs with --canonical-cache)
//   --mor-order Q             starting reduced-model order (default 16)
//   --certify                 a-posteriori accuracy certificates + escalation
//   --cert-tol T              max relative transfer-fn error (default 0.02)
//   --cert-freqs N            sample frequencies per certificate (default 5)
//   --max-mor-order Q         escalation ladder order ceiling (default 64)
//   --audit-fraction F        fraction of MOR results re-run on golden SPICE
//   --audit-peak-tol F        audit peak tolerance as fraction of Vdd
//   --fail-on LIST            exit 3 when any finding is at least as severe as
//                             any listed status (comma-separated names, e.g.
//                             "accuracy-bound,failed" or "kFailed") — CI gate
//   --workers LIST            comma-separated xtv_worker endpoints
//                             (host:port,...); victims are leased to the
//                             fleet over TCP (DESIGN.md §14) instead of
//                             local threads/processes
//   --worker-heartbeat-ms MS  expected worker heartbeat; 10x silence expires
//                             its leases (default 250)
//   --unit-victims N          victims per leased work unit (default 16)
//   --max-unit-attempts N     lease attempts before a unit is quarantined
//                             and conceded (default 4)
#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include <memory>

#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "flags.h"
#include "serve/job.h"
#include "serve/remote.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace xtv;

int main(int argc, char** argv) {
  const Technology tech = Technology::default_250nm();
  CellLibrary library(tech);
  CharacterizedLibrary chars(library);
  Extractor extractor(tech);

  DspChipOptions chip_options;
  chip_options.net_count = 800;
  VerifierOptions options;
  options.glitch_threshold = 0.10;          // flag peaks above 10% of Vdd
  options.glitch.align_aggressors = true;   // worst-case alignment search
  options.glitch.tstop = 4e-9;
  options.model_cache_mb = 64.0;            // repeated clusters reuse models

  // Cell characterization cache: default next to the binary (not the
  // CWD), so every invocation of the same build shares one cache no
  // matter where it is launched from.
  std::string cell_cache = "xtv_cells.cache";
  {
    std::string self = argv[0] ? argv[0] : "";
    const std::size_t slash = self.rfind('/');
    if (slash != std::string::npos)
      cell_cache = self.substr(0, slash + 1) + cell_cache;
  }

  int fail_on_severity = INT_MAX;  // --fail-on CI gate; INT_MAX = disabled
  serve::RemoteExecOptions remote_options;  // --workers remote fan-out
  flags::SeenFlags seen;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    seen.check(arg);
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--threads") == 0) {
      options.threads = flags::parse_size(arg, value(arg), 1,
                                          "an integer >= 1");
    } else if (std::strcmp(arg, "--processes") == 0) {
      // 0 is the library default (in-process path), but asking for zero
      // worker processes explicitly is a contradiction, not a request.
      options.processes = flags::parse_size(arg, value(arg), 1,
                                            "an integer >= 1");
    } else if (std::strcmp(arg, "--shard-heartbeat-ms") == 0) {
      const char* v = value(arg);
      options.shard_heartbeat_ms =
          flags::parse_double(arg, v, 0.0, 1e9, "a period > 0 ms");
      if (options.shard_heartbeat_ms <= 0.0)
        flags::usage_error(arg, v, "a period > 0 ms");
    } else if (std::strcmp(arg, "--max-shard-restarts") == 0) {
      options.max_shard_restarts = flags::parse_size(arg, value(arg));
    } else if (std::strcmp(arg, "--cluster-deadline-ms") == 0) {
      options.cluster_deadline_ms =
          flags::parse_double(arg, value(arg), 0.0, 1e12,
                              "a budget >= 0 ms");
    } else if (std::strcmp(arg, "--cluster-mem-mb") == 0) {
      options.cluster_mem_mb = flags::parse_double(
          arg, value(arg), 0.0, 1e9, "a size >= 0 MiB");
    } else if (std::strcmp(arg, "--global-mem-soft-mb") == 0) {
      options.global_mem_soft_mb = flags::parse_double(
          arg, value(arg), 0.0, 1e9, "a size >= 0 MiB");
    } else if (std::strcmp(arg, "--journal") == 0) {
      options.journal_path = value(arg);
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--model-cache-mb") == 0) {
      options.model_cache_mb = flags::parse_double(
          arg, value(arg), 0.0, 1e9, "a size >= 0 MiB");
    } else if (std::strcmp(arg, "--no-model-cache") == 0) {
      options.model_cache_mb = 0.0;
    } else if (std::strcmp(arg, "--canonical-cache") == 0) {
      options.canonical_cache = true;
    } else if (std::strcmp(arg, "--canonical-cache-tol") == 0) {
      const char* v = value(arg);
      options.canonical_cache_tol =
          flags::parse_double(arg, v, 0.0, 1.0, "a relative tolerance in (0,1]");
      if (options.canonical_cache_tol <= 0.0)
        flags::usage_error(arg, v, "a relative tolerance in (0,1]");
    } else if (std::strcmp(arg, "--batch-width") == 0) {
      options.batch_width =
          flags::parse_size(arg, value(arg), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--cell-cache") == 0) {
      cell_cache = value(arg);
    } else if (std::strcmp(arg, "--replicate-rows") == 0) {
      chip_options.replicate_rows =
          flags::parse_size(arg, value(arg), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--cluster-repeat-skew") == 0) {
      chip_options.cluster_repeat_skew = flags::parse_double(
          arg, value(arg), 0.0, 1.0, "a relative skew in [0,1)");
    } else if (std::strcmp(arg, "--mor-order") == 0) {
      options.glitch.mor.max_order = flags::parse_size(
          arg, value(arg), 0, "an integer (0 = automatic)");
    } else if (std::strcmp(arg, "--certify") == 0) {
      options.certify = true;
    } else if (std::strcmp(arg, "--cert-tol") == 0) {
      const char* v = value(arg);
      options.cert_rel_tol =
          flags::parse_double(arg, v, 0.0, 1.0, "a tolerance in (0,1]");
      if (options.cert_rel_tol <= 0.0)
        flags::usage_error(arg, v, "a tolerance in (0,1]");
    } else if (std::strcmp(arg, "--cert-freqs") == 0) {
      options.cert_freqs =
          flags::parse_size(arg, value(arg), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--max-mor-order") == 0) {
      options.max_mor_order =
          flags::parse_size(arg, value(arg), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--audit-fraction") == 0) {
      options.audit_fraction = flags::parse_double(
          arg, value(arg), 0.0, 1.0, "a fraction in [0,1]");
    } else if (std::strcmp(arg, "--audit-peak-tol") == 0) {
      options.audit_peak_tol_frac = flags::parse_double(
          arg, value(arg), 0.0, 1.0, "a fraction in [0,1]");
    } else if (std::strcmp(arg, "--workers") == 0) {
      std::istringstream list(value(arg));
      for (std::string ep; std::getline(list, ep, ',');)
        if (!ep.empty()) remote_options.workers.push_back(ep);
      if (remote_options.workers.empty())
        flags::usage_error(arg, "", "a host:port list");
    } else if (std::strcmp(arg, "--worker-heartbeat-ms") == 0) {
      remote_options.heartbeat_ms = flags::parse_double(
          arg, value(arg), 0.0, 1e9, "a period >= 0 ms (0 = stall check off)");
    } else if (std::strcmp(arg, "--unit-victims") == 0) {
      remote_options.unit_victims =
          flags::parse_size(arg, value(arg), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--max-unit-attempts") == 0) {
      remote_options.max_unit_attempts =
          flags::parse_size(arg, value(arg), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--fail-on") == 0) {
      std::istringstream list(value(arg));
      for (std::string name; std::getline(list, name, ',');) {
        if (name.empty()) continue;
        FindingStatus s;
        if (!parse_finding_status(name, &s)) {
          std::fprintf(stderr,
                       "--fail-on: unknown finding status \"%s\"\n",
                       name.c_str());
          return 2;
        }
        fail_on_severity = std::min(fail_on_severity,
                                    finding_status_severity(s));
      }
    } else if (arg[0] != '-') {
      chip_options.net_count =
          flags::parse_size("net_count", arg, 1, "an integer >= 1");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
  }
  if (options.resume && options.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal PATH\n");
    return 2;
  }
  if (!remote_options.workers.empty() &&
      chip_options.cluster_repeat_skew > 0.0) {
    // The design knob does not travel in a job spec: remote workers would
    // rebuild an unskewed design and verify different electricals.
    std::fprintf(stderr,
                 "--cluster-repeat-skew cannot be combined with --workers\n");
    return 2;
  }

  // Remote fan-out: workers rebuild the job from a JobSpec text replay,
  // so any result-affecting flag that does not travel in a spec would
  // silently put the fleet on different options. The distributability
  // gate is exact: the spec must round-trip to this run's options hash.
  std::unique_ptr<serve::RemoteExecutor> remote;
  if (!remote_options.workers.empty()) {
    serve::JobSpec spec;
    spec.options = options;
    spec.design_nets = chip_options.net_count;
    if (chip_options.replicate_rows > 1)
      spec.design_rows = chip_options.replicate_rows;
    serve::JobSpec echo;
    std::string perr;
    if (!serve::JobSpec::parse(spec.to_text(), &echo, &perr)) {
      std::fprintf(stderr, "--workers: options not distributable: %s\n",
                   perr.c_str());
      return 2;
    }
    if (options_result_hash(echo.to_options()) !=
        options_result_hash(options)) {
      std::fprintf(stderr,
                   "--workers: options not distributable (a "
                   "result-affecting flag does not travel in a job spec)\n");
      return 2;
    }
    remote_options.journal_path = options.journal_path;
    remote_options.options_hash = options_result_hash(options);
    remote_options.spec_text = spec.to_text();
    remote = std::make_unique<serve::RemoteExecutor>(remote_options);
    options.remote_backend = remote.get();
  }
  chars.load(cell_cache);

  std::printf("generating DSP-like design: %zu nets...\n", chip_options.net_count);
  const ChipDesign design = generate_dsp_chip(library, chip_options);

  std::size_t buses = 0, latches = 0;
  for (const auto& net : design.nets) {
    if (!net.bus_drivers.empty()) ++buses;
    if (net.latch_input) ++latches;
  }
  std::printf("  %zu coupling runs, %zu tri-state buses, %zu latch inputs, "
              "%zu complementary pairs\n",
              design.couplings.size(), buses, latches,
              design.complementary_pairs.size());
  if (options.threads > 1)
    std::printf("  %zu worker threads\n", options.threads);
  if (options.processes > 0)
    std::printf("  %zu worker processes (heartbeat %.0f ms, %zu restarts "
                "per shard)\n",
                options.processes, options.shard_heartbeat_ms,
                options.max_shard_restarts);
  if (remote)
    std::printf("  %zu remote workers (heartbeat %.0f ms, %zu victims/unit, "
                "%zu lease attempts)\n",
                remote_options.workers.size(), remote_options.heartbeat_ms,
                remote_options.unit_victims,
                remote_options.max_unit_attempts);
  if (options.cluster_deadline_ms > 0.0)
    std::printf("  per-cluster budget %.1f ms\n", options.cluster_deadline_ms);
  if (options.cluster_mem_mb > 0.0)
    std::printf("  per-cluster memory budget %.3f MiB\n", options.cluster_mem_mb);
  if (options.global_mem_soft_mb > 0.0)
    std::printf("  soft RSS limit %.1f MiB\n", options.global_mem_soft_mb);
  if (options.model_cache_mb > 0.0)
    std::printf("  reduced-model cache %.0f MiB\n", options.model_cache_mb);
  if (options.canonical_cache)
    std::printf("  canonical cache keys (quantization tol %.3g, "
                "certificate-gated reuse)\n",
                options.canonical_cache_tol);
  if (options.batch_width > 1)
    std::printf("  lockstep batch width %zu\n", options.batch_width);
  if (chip_options.replicate_rows > 1)
    std::printf("  %zu replicated rows%s\n", chip_options.replicate_rows,
                chip_options.cluster_repeat_skew > 0.0 ? " (load-skewed)"
                                                       : "");
  if (!options.journal_path.empty())
    std::printf("  journal %s%s\n", options.journal_path.c_str(),
                options.resume ? " (resuming)" : "");
  if (options.certify)
    std::printf("  certifying reduced models (rel tol %.3g, %zu freqs, "
                "order ceiling %zu)\n",
                options.cert_rel_tol, options.cert_freqs,
                options.max_mor_order);
  if (options.audit_fraction > 0.0)
    std::printf("  auditing %.0f%% of MOR results on the golden engine\n",
                100.0 * options.audit_fraction);

  ChipVerifier verifier(extractor, chars);
  VerificationReport report;
  try {
    report = verifier.verify(design, options);
  } catch (const std::exception& e) {
    // Configuration errors (e.g. --resume against a journal written under
    // different options) are reported, not crashed on.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("\n%s", report.to_string().c_str());
  std::printf("robustness: eligible=%zu analyzed=%zu screened=%zu retried=%zu "
              "fallback=%zu (deadline=%zu resource=%zu accuracy=%zu) "
              "failed=%zu\n",
              report.victims_eligible, report.victims_analyzed,
              report.victims_screened_out, report.victims_retried,
              report.victims_fallback, report.victims_deadline_bound,
              report.victims_resource_bound, report.victims_accuracy_bound,
              report.victims_failed);
  if (options.processes > 0 && !remote)
    std::printf("process shards: crashes=%zu restarts=%zu quarantined=%zu "
                "shard-crashed=%zu\n",
                report.worker_crashes, report.shard_restarts,
                report.victims_quarantined, report.victims_shard_crashed);
  if (remote) {
    const serve::RemoteExecStats& rs = remote->remote_stats();
    std::printf("remote fan-out: connected=%zu rejected=%zu lost=%zu "
                "lease-expiries=%zu reassignments=%zu stale-frames=%zu "
                "duplicates=%zu quarantined=%zu local-fallback=%zu\n",
                rs.workers_connected, rs.workers_rejected, rs.workers_lost,
                rs.lease_expiries, rs.lease.reassignments,
                rs.lease.stale_frames, rs.lease.duplicate_results,
                report.victims_quarantined, rs.victims_local);
  }
  if (options.certify)
    std::printf("accuracy: certified=%zu escalated=%zu (order raises=%zu) "
                "accuracy-bound=%zu\n",
                report.victims_certified, report.victims_escalated,
                report.order_escalations, report.victims_accuracy_bound);
  if (report.model_cache_hits + report.model_cache_misses > 0)
    std::printf("model cache: hits=%zu misses=%zu (%.0f%% hit rate) "
                "entries=%zu bytes=%.1f MiB evictions=%zu\n",
                report.model_cache_hits, report.model_cache_misses,
                100.0 * static_cast<double>(report.model_cache_hits) /
                    static_cast<double>(report.model_cache_hits +
                                        report.model_cache_misses),
                report.model_cache_entries,
                static_cast<double>(report.model_cache_bytes) /
                    (1024.0 * 1024.0),
                report.model_cache_evictions);
  if (report.canonical_hits + report.canonical_cert_rejects > 0)
    std::printf("canonical cache: certified-reuses=%zu cert-rejects=%zu\n",
                report.canonical_hits, report.canonical_cert_rejects);
  if (report.batched_victims > 0)
    std::printf("batched: victims=%zu lane-fallbacks=%zu\n",
                report.batched_victims, report.batch_lane_fallbacks);
  if (report.victims_audited > 0)
    std::printf("audit: sampled=%zu out-of-tolerance=%zu "
                "worst peak delta=%.4g V worst arrival delta=%.3g s\n",
                report.victims_audited, report.audit_failures,
                report.audit_max_peak_err, report.audit_max_time_err);
  for (const auto& f : report.findings) {
    if (f.status == FindingStatus::kAnalyzed ||
        f.status == FindingStatus::kCertified)
      continue;
    std::printf("  net %zu: %s (%zu retries%s%s)\n", f.net,
                finding_status_name(f.status), f.retries,
                f.error.empty() ? "" : ", first error: ",
                f.error.c_str());
  }

  // Distribution of glitch magnitudes across the chip.
  Histogram hist(0.0, 1.0, 10);
  for (const auto& f : report.findings) hist.add(f.peak_fraction);
  std::printf("\nglitch peak distribution (fraction of Vdd):\n%s",
              hist.to_ascii(40, 2).c_str());

  SummaryStats orders;
  for (const auto& f : report.findings)
    orders.add(static_cast<double>(f.reduced_order));
  std::printf("\nreduced model orders: %s\n", orders.to_string(1).c_str());
  std::printf("wall time: %.1f s (%.1f s cpu) for %zu analyzed victims\n",
              report.wall_seconds, report.total_cpu_seconds,
              report.victims_analyzed);
  chars.save(cell_cache);

  // CI gate: any finding at least as severe as the worst-tolerated status
  // fails the run with a distinct exit code (2 = config error, 3 = gated).
  if (fail_on_severity != INT_MAX) {
    std::size_t gated = 0;
    for (const auto& f : report.findings)
      if (finding_status_severity(f.status) >= fail_on_severity) ++gated;
    if (gated > 0) {
      std::fprintf(stderr,
                   "--fail-on: %zu finding(s) at or above the gated "
                   "severity\n",
                   gated);
      return 3;
    }
  }
  return 0;
}
