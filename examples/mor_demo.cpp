// SyMPVL model-order reduction walkthrough (paper Section 3): extract a
// coupled interconnect cluster, reduce it, and verify the reduced model's
// headline properties — block moment matching (matrix-Padé), provable
// passivity, and transfer-function convergence with order.
//
// Build & run:  ./build/examples/mor_demo
#include <cstdio>

#include "extract/extractor.h"
#include "linalg/dense_lu.h"
#include "mor/sympvl.h"
#include "util/table.h"
#include "util/units.h"

using namespace xtv;

int main() {
  const Technology tech = Technology::default_250nm();
  Extractor extractor(tech);

  // The paper's Figure-1 structure: a victim between two aggressors.
  RcNetwork net = extractor.extract_parallel3(1000 * units::um);
  for (std::size_t p = 0; p < net.port_count(); ++p)
    net.stamp_port_conductance(p, p % 2 == 0 ? 1e-3 : 1e-9);
  const DenseMatrix g = net.g_matrix();
  const DenseMatrix c = net.c_matrix();
  const DenseMatrix b = net.b_matrix();
  std::printf("cluster: %d nodes, %zu ports, %zu R, %zu C\n", net.node_count(),
              net.port_count(), net.resistors().size(), net.capacitors().size());

  // Reduce at increasing orders and report moment/transfer accuracy.
  AsciiTable table({"order", "moment-0 err", "moment-1 err", "H(1GHz) err",
                    "min eig(T)", "passive"});
  for (std::size_t q : {6u, 12u, 24u, 48u}) {
    SympvlOptions opt;
    opt.max_order = q;
    const ReducedModel model = sympvl_reduce(g, c, b, opt);

    auto rel_err = [](const DenseMatrix& approx, const DenseMatrix& exact) {
      return approx.max_abs_diff(exact) / (exact.frobenius_norm() + 1e-300);
    };
    const double m0 = rel_err(model.moment(0), exact_moment(g, c, b, 0));
    const double m1 = rel_err(model.moment(1), exact_moment(g, c, b, 1));

    // Exact transfer at s = 2*pi*1GHz (real-axis evaluation).
    const double s = 6.283e9;
    const std::size_t n = g.rows();
    DenseMatrix gs(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) gs(i, j) = g(i, j) + s * c(i, j);
    const DenseMatrix h_exact = matmul_at_b(b, DenseLu(gs).solve(b));
    const double h_err = rel_err(model.transfer(s), h_exact);

    char sci[3][32];
    std::snprintf(sci[0], sizeof(sci[0]), "%.1e", m0);
    std::snprintf(sci[1], sizeof(sci[1]), "%.1e", m1);
    std::snprintf(sci[2], sizeof(sci[2]), "%.1e", h_err);
    table.add_row({std::to_string(model.order()), sci[0], sci[1], sci[2],
                   AsciiTable::num(model.min_t_eigenvalue() * 1e12, 4) + "e-12",
                   model.is_passive() ? "yes" : "NO"});
  }
  std::printf("\n== SyMPVL order sweep ==\n%s", table.to_string().c_str());
  std::printf("\nEvery reduced model is symmetric PSD (T >= 0): stable and "
              "passive by construction, per the paper's refs [3][4].\n");
  return 0;
}
