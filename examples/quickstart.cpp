// Quickstart: analyze the crosstalk glitch one switching aggressor induces
// on a quiet victim net, with the paper's full pipeline — extraction,
// SyMPVL reduction, and a pre-characterized non-linear driver model — and
// cross-check the result against the built-in transistor-level golden
// simulation.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "cells/cell_library.h"
#include "cells/characterize.h"
#include "core/glitch_analyzer.h"
#include "extract/extractor.h"
#include "util/units.h"

using namespace xtv;

int main() {
  // 1. Technology + cell library (0.25 um class, Vdd = 3.0 V).
  const Technology tech = Technology::default_250nm();
  CellLibrary library(tech);
  CharacterizedLibrary chars(library);
  chars.load("xtv_cells.cache");  // reuse prior characterization if present

  // 2. The scenario: a 1 mm victim held high by a small inverter, coupled
  //    over 800 um to an aggressor driven by a strong buffer that falls.
  VictimSpec victim;
  victim.route = {1000 * units::um, 0.0};
  victim.driver_cell = "INV_X1";
  victim.held_high = true;
  victim.receiver_cap = 10 * units::fF;

  AggressorSpec aggressor;
  aggressor.route = {900 * units::um, 0.0};
  aggressor.driver_cell = "BUF_X8";
  aggressor.rising = false;  // falls, pulling the victim low
  aggressor.input_slew = 0.1 * units::ns;
  aggressor.receiver_cap = 10 * units::fF;
  aggressor.run = {0, 0, 800 * units::um, 0.0, 50 * units::um, 50 * units::um};

  // 3. Analyze with the fast MOR path (SyMPVL + non-linear cell model).
  Extractor extractor(tech);
  GlitchAnalyzer analyzer(extractor, chars);
  GlitchAnalysisOptions options;
  options.driver_model = DriverModelKind::kNonlinearTable;
  options.align_aggressors = false;

  const GlitchResult fast = analyzer.analyze(victim, {aggressor}, options);
  std::printf("MOR + nonlinear cell model:\n");
  std::printf("  victim glitch peak: %+.3f V (%.0f%% of Vdd)\n", fast.peak,
              100.0 * -fast.peak / tech.vdd);
  std::printf("  reduced order: %zu, cpu: %.1f ms\n", fast.reduced_order,
              fast.cpu_seconds * 1e3);

  // 4. Golden cross-check: the same cluster with transistor-level drivers.
  options.driver_model = DriverModelKind::kTransistor;
  const GlitchResult golden = analyzer.analyze_spice(victim, {aggressor}, options);
  std::printf("transistor-level SPICE reference:\n");
  std::printf("  victim glitch peak: %+.3f V, cpu: %.1f ms\n", golden.peak,
              golden.cpu_seconds * 1e3);
  std::printf("model error: %+.1f%%, speed-up: %.1fx\n",
              100.0 * (fast.peak - golden.peak) / golden.peak,
              golden.cpu_seconds / fast.cpu_seconds);

  // 5. Is this a violation? Compare against a 10%-of-Vdd noise margin.
  const bool violation = -fast.peak > 0.1 * tech.vdd;
  std::printf("verdict: glitch %s the 10%% noise margin\n",
              violation ? "VIOLATES" : "is within");
  chars.save("xtv_cells.cache");
  return 0;
}
