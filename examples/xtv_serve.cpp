// Verification service CLI (src/serve, DESIGN.md §13).
//
//   xtv_serve daemon --socket PATH --jobs-dir DIR [options]
//     Long-lived daemon: builds the resident design once, then accepts
//     verification jobs over the Unix-domain socket (and, with --listen,
//     a TCP listener) until SIGTERM/SIGINT drains it (exit 0). Options:
//       --nets N                resident design size (default 800)
//       --replicate-rows R      tile the design out of R rows
//       --cell-cache PATH       characterization cache file
//       --listen HOST:PORT      also serve TCP (port 0 = ephemeral; the
//                               bound endpoint lands in JOBS/daemon.tcp)
//       --queue N               admission queue capacity (default 8)
//       --max-running N         concurrent job runners (default 1)
//       --processes N           shard workers per runner when the job
//                               spec does not say (default 2)
//       --batch-width W         lockstep batch lanes per runner when the
//                               job spec does not say (default 1;
//                               scheduling-only, never changes findings)
//       --retries N             default attempts after the first (default 2)
//       --deadline-ms MS        default per-attempt wall clock (0 = off)
//       --grace-ms MS           runner startup grace before the stall
//                               check arms (default 30000)
//       --backoff-base-ms MS    retry backoff base (default 500)
//       --backoff-max-ms MS     retry backoff ceiling (default 8000)
//       --global-mem-soft-mb MB cross-job memory budget: gates launches
//                               and sheds the youngest runner under live
//                               RSS pressure (0 = off)
//       --max-job-nets N        admission cap on per-job designs (0 = off)
//       --age-promote-ms MS     queued jobs older than this jump the
//                               largest-fit packing order (default 5000)
//       --max-connections N     live client connection cap (default 64)
//       --io-timeout-ms MS      per-connection read/write deadline
//                               (slow-loris eviction; 0 = off)
//       --keepalive-ms MS       idle TCP keepalive period (0 = off)
//       --drain-timeout-ms MS   drain kills running jobs after this (0 = wait)
//       --workers LIST          lease every job's victims to these
//                               xtv_worker endpoints (host:port,...)
//                               instead of local process shards
//       --worker-heartbeat-ms MS  expected worker heartbeat (default 250)
//       --unit-victims N        victims per leased work unit (default 16)
//       --max-unit-attempts N   lease attempts before quarantine (default 4)
//
//   xtv_serve submit --socket ENDPOINT [--timeout-ms MS] [SPEC k=v ...]
//     Submits one job (trailing k=v tokens form the spec; none = the
//     chip_audit-default options; nets=N runs a per-job design), streams
//     findings, waits for the verdict. ENDPOINT is a Unix socket path or
//     HOST:PORT. Exit 0 = done, 3 = conceded, 1 = rejected/failed.
//
//   xtv_serve query --socket ENDPOINT [--timeout-ms MS] KEY
//     Prints the daemon's status line for a 16-hex job key.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "flags.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "util/log.h"

using namespace xtv;

namespace {

int run_daemon(int argc, char** argv) {
  // A daemon's lifecycle events (admission, retries, drain) are its user
  // interface; surface them by default.
  set_log_level(LogLevel::kInfo);
  serve::DaemonOptions opt;
  flags::SeenFlags seen;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    seen.check(arg);
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage error: %s requires a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--socket") == 0) {
      opt.socket_path = value();
    } else if (std::strcmp(arg, "--jobs-dir") == 0) {
      opt.jobs_dir = value();
    } else if (std::strcmp(arg, "--nets") == 0) {
      opt.net_count = flags::parse_size(arg, value(), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--replicate-rows") == 0) {
      opt.replicate_rows =
          flags::parse_size(arg, value(), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--cell-cache") == 0) {
      opt.cell_cache = value();
    } else if (std::strcmp(arg, "--listen") == 0) {
      const char* v = value();
      if (!serve::parse_tcp_endpoint(std::string("tcp:") + v, nullptr,
                                     nullptr))
        flags::usage_error(arg, v, "HOST:PORT");
      opt.listen_address = v;
    } else if (std::strcmp(arg, "--queue") == 0) {
      opt.queue_capacity =
          flags::parse_size(arg, value(), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--max-running") == 0) {
      opt.max_running = flags::parse_size(arg, value(), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--processes") == 0) {
      opt.default_processes =
          flags::parse_size(arg, value(), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--batch-width") == 0) {
      opt.default_batch_width =
          flags::parse_size(arg, value(), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--retries") == 0) {
      opt.default_retries =
          flags::parse_long(arg, value(), 0, "an integer >= 0");
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      opt.default_deadline_ms =
          flags::parse_double(arg, value(), 0.0, 1e12, "a value >= 0 ms");
    } else if (std::strcmp(arg, "--grace-ms") == 0) {
      opt.runner_grace_ms =
          flags::parse_double(arg, value(), 0.0, 1e12, "a value >= 0 ms");
    } else if (std::strcmp(arg, "--backoff-base-ms") == 0) {
      const char* v = value();
      opt.backoff.base_ms =
          flags::parse_double(arg, v, 0.0, 1e9, "a period > 0 ms");
      if (opt.backoff.base_ms <= 0.0)
        flags::usage_error(arg, v, "a period > 0 ms");
    } else if (std::strcmp(arg, "--backoff-max-ms") == 0) {
      const char* v = value();
      opt.backoff.max_ms =
          flags::parse_double(arg, v, 0.0, 1e9, "a period > 0 ms");
      if (opt.backoff.max_ms <= 0.0)
        flags::usage_error(arg, v, "a period > 0 ms");
    } else if (std::strcmp(arg, "--global-mem-soft-mb") == 0) {
      opt.global_mem_soft_mb =
          flags::parse_double(arg, value(), 0.0, 1e9, "a size >= 0 MiB");
    } else if (std::strcmp(arg, "--max-job-nets") == 0) {
      opt.max_job_nets =
          flags::parse_size(arg, value(), 0, "an integer >= 0 (0 = off)");
    } else if (std::strcmp(arg, "--age-promote-ms") == 0) {
      opt.age_promote_ms =
          flags::parse_double(arg, value(), 0.0, 1e12, "a value >= 0 ms");
    } else if (std::strcmp(arg, "--max-connections") == 0) {
      opt.max_connections =
          flags::parse_size(arg, value(), 1, "an integer >= 1");
    } else if (std::strcmp(arg, "--io-timeout-ms") == 0) {
      opt.io_timeout_ms =
          flags::parse_double(arg, value(), 0.0, 1e12, "a value >= 0 ms");
    } else if (std::strcmp(arg, "--keepalive-ms") == 0) {
      opt.keepalive_ms =
          flags::parse_double(arg, value(), 0.0, 1e12, "a value >= 0 ms");
    } else if (std::strcmp(arg, "--drain-timeout-ms") == 0) {
      opt.drain_timeout_ms =
          flags::parse_double(arg, value(), 0.0, 1e12, "a value >= 0 ms");
    } else if (std::strcmp(arg, "--workers") == 0) {
      std::istringstream list(value());
      for (std::string ep; std::getline(list, ep, ',');)
        if (!ep.empty()) opt.workers.push_back(ep);
    } else if (std::strcmp(arg, "--worker-heartbeat-ms") == 0) {
      opt.worker_heartbeat_ms = flags::parse_double(
          arg, value(), 0.0, 1e9, "a period >= 0 ms (0 = stall check off)");
    } else if (std::strcmp(arg, "--unit-victims") == 0) {
      opt.unit_victims = flags::parse_size(arg, value(), 1,
                                           "an integer >= 1");
    } else if (std::strcmp(arg, "--max-unit-attempts") == 0) {
      opt.max_unit_attempts = flags::parse_size(arg, value(), 1,
                                                "an integer >= 1");
    } else {
      std::fprintf(stderr, "usage error: unknown daemon flag %s\n", arg);
      return 2;
    }
  }
  if (opt.socket_path.empty() || opt.jobs_dir.empty()) {
    std::fprintf(stderr,
                 "usage error: daemon mode requires --socket and "
                 "--jobs-dir\n");
    return 2;
  }
  serve::ServeDaemon daemon(opt);
  return daemon.run();
}

int run_submit(int argc, char** argv) {
  std::string socket_path, spec_text;
  double timeout_ms = 600000.0;
  flags::SeenFlags seen;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    seen.check(arg);
    if (std::strcmp(arg, "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(arg, "--timeout-ms") == 0 && i + 1 < argc) {
      const char* v = argv[++i];
      timeout_ms = flags::parse_double(arg, v, 0.0, 1e12, "a value > 0 ms");
      if (timeout_ms <= 0.0) flags::usage_error(arg, v, "a value > 0 ms");
    } else if (std::strchr(arg, '=') != nullptr) {
      if (!spec_text.empty()) spec_text += ' ';
      spec_text += arg;
    } else {
      std::fprintf(stderr, "usage error: unknown submit argument %s\n", arg);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage error: submit mode requires --socket\n");
    return 2;
  }

  serve::JobSpec spec;
  std::string err;
  if (!serve::JobSpec::parse(spec_text, &spec, &err)) {
    std::fprintf(stderr, "usage error: %s\n", err.c_str());
    return 2;
  }
  serve::ServeClient client;
  if (!client.connect(socket_path, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::printf("submitting job %s to %s\n",
              serve::job_key_hex(spec.key()).c_str(), socket_path.c_str());
  serve::JobResult result;
  std::size_t violations = 0;
  const bool ok = serve::submit_and_wait(
      client, spec, timeout_ms, &result, &err,
      [&](const JournalRecord& rec) {
        if (rec.finding.violation) ++violations;
      });
  if (!ok) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::printf("job %s %s: %zu finding(s), %zu violation(s)\n",
              serve::job_key_hex(result.key).c_str(),
              serve::job_state_name(result.state), result.findings.size(),
              violations);
  if (!result.summary.empty())
    std::printf("  %s\n", result.summary.c_str());
  if (result.duplicate_findings > 0) {
    std::fprintf(stderr, "error: %zu duplicated finding(s) in the stream\n",
                 result.duplicate_findings);
    return 1;
  }
  return result.state == serve::JobState::kDone ? 0 : 3;
}

int run_query(int argc, char** argv) {
  std::string socket_path, key_hex;
  double timeout_ms = 10000.0;
  flags::SeenFlags seen;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    seen.check(arg);
    if (std::strcmp(arg, "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(arg, "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_ms = flags::parse_double(arg, argv[++i], 1.0, 1e12,
                                       "a value >= 1 ms");
    } else if (arg[0] != '-') {
      key_hex = arg;
    } else {
      std::fprintf(stderr, "usage error: unknown query argument %s\n", arg);
      return 2;
    }
  }
  std::uint64_t key = 0;
  if (socket_path.empty() || !serve::parse_job_key(key_hex, &key)) {
    std::fprintf(stderr,
                 "usage error: query mode requires --socket and a 16-hex "
                 "job key\n");
    return 2;
  }
  serve::ServeClient client;
  std::string err;
  if (!client.connect(socket_path, &err) ||
      !client.send(WireType::kJobQuery, "q " + key_hex, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  for (;;) {
    WireFrame f;
    if (!client.recv(&f, timeout_ms, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    if (f.type == WireType::kJobStatus) {
      std::printf("%s\n", f.payload.c_str());
      return 0;
    }
    if (f.type == WireType::kJobRejected) {
      std::fprintf(stderr, "error: %s\n", f.payload.c_str());
      return 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "daemon") == 0)
    return run_daemon(argc, argv);
  if (argc >= 2 && std::strcmp(argv[1], "submit") == 0)
    return run_submit(argc, argv);
  if (argc >= 2 && std::strcmp(argv[1], "query") == 0)
    return run_query(argc, argv);
  std::fprintf(stderr,
               "usage: xtv_serve daemon|submit|query [flags]\n"
               "  see the header comment of examples/xtv_serve.cpp\n");
  return 2;
}
