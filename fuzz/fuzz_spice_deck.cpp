// libFuzzer harness for the SPICE deck parser (built only under -DXTV_FUZZ=ON
// with clang). Mirrors the contract in tests/test_deck_fuzz.cpp: any byte
// string must either parse into a Circuit or be rejected with
// std::runtime_error — never crash or leak another exception type. Seed it
// with the deterministic corpus:
//
//   ./build/fuzz/fuzz_spice_deck tests/corpus/
//
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "netlist/spice_deck.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string deck(reinterpret_cast<const char*>(data), size);
  try {
    (void)xtv::parse_spice_deck(deck);
  } catch (const std::runtime_error&) {
    // Typed rejection is the documented failure mode.
  } catch (...) {
    // Anything else escaping the parser is a bug worth a crash report.
    std::abort();
  }
  return 0;
}
