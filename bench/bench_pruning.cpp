// Pruning ablation (paper Section 3's cluster statistics): sweep the
// coupling-ratio threshold over the DSP design and report how the average
// analyzed-cluster size and retained-coupling count respond, plus the
// effect of the driver-strength ("cell and context information")
// weighting. The paper's production numbers: ~105-net clusters before
// pruning, 2-5 nets after.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/pruning.h"

using namespace xtv;

int main() {
  bench::Context ctx;
  DspChipOptions chip_opt;
  chip_opt.net_count = 1500;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_opt);
  {
    std::vector<std::string> cells;
    for (const auto& net : design.nets) cells.push_back(net.driver_cell);
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    ctx.warm_cells(cells);
  }
  const auto summaries = chip_net_summaries(design, ctx.extractor, ctx.chars);

  std::printf("== Pruning ablation: coupling-ratio threshold sweep ==\n");
  std::printf("design: %zu nets, %zu coupling runs\n\n", design.nets.size(),
              design.couplings.size());

  AsciiTable table({"threshold", "strength wt", "couplings kept",
                    "avg cluster before", "avg cluster after", "max after"});
  bool shrinks = true;
  for (bool weighted : {true, false}) {
    double prev_after = 1e9;
    for (double th : {0.01, 0.02, 0.05, 0.08, 0.12, 0.20}) {
      PruningOptions opt;
      opt.ratio_threshold = th;
      opt.use_driver_strength = weighted;
      const PruneResult res = prune_couplings(summaries, opt);
      table.add_row({AsciiTable::num(th, 2), weighted ? "yes" : "no",
                     std::to_string(res.stats.couplings_after),
                     AsciiTable::num(res.stats.avg_cluster_before, 1),
                     AsciiTable::num(res.stats.avg_cluster_after, 2),
                     std::to_string(res.stats.max_cluster_after)});
      if (res.stats.avg_cluster_after > prev_after + 1e-9) shrinks = false;
      prev_after = res.stats.avg_cluster_after;
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // The default operating point (threshold 0.05) must land in the paper's
  // 2-5 net band.
  const PruneResult nominal = prune_couplings(summaries, {});
  std::printf("nominal (threshold %.2f): avg cluster %.1f -> %.2f nets\n",
              PruningOptions{}.ratio_threshold,
              nominal.stats.avg_cluster_before,
              nominal.stats.avg_cluster_after);
  const bool pass = shrinks && nominal.stats.avg_cluster_after >= 2.0 &&
                    nominal.stats.avg_cluster_after <= 6.0 &&
                    nominal.stats.avg_cluster_before > 20.0;
  std::printf("paper shape check — dense clusters collapse to the 2-5-net "
              "band at the nominal threshold: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
