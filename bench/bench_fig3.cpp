// Figure 3: accuracy of MPVL (reduced-order) vs SPICE on the crosstalk
// peaks of 113 coupled networks from the DSP design, with 2-12 aggressors
// each, assuming a linear drive resistance of 1 kOhm.
//
// Paper results: average |error| 0.24%, maximum 1.05%, average 15x
// speed-up; a negative error means MPVL overestimates the peak.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "util/stats.h"

using namespace xtv;

int main() {
  bench::Context ctx;

  // Generate the DSP-like design and pull its post-pruning clusters.
  DspChipOptions chip_opt;
  chip_opt.net_count = 1500;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_opt);

  // Warm every driver cell the design uses.
  {
    std::vector<std::string> cells;
    for (const auto& net : design.nets) cells.push_back(net.driver_cell);
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    ctx.warm_cells(cells);
  }

  const auto summaries = chip_net_summaries(design, ctx.extractor, ctx.chars);
  PruningOptions popt;
  const PruneResult pruned = prune_couplings(summaries, popt);
  std::printf("pruning: avg cluster %.1f -> %.2f nets (max %zu)\n",
              pruned.stats.avg_cluster_before, pruned.stats.avg_cluster_after,
              pruned.stats.max_cluster_after);

  ChipVerifier verifier(ctx.extractor, ctx.chars);
  GlitchAnalyzer analyzer(ctx.extractor, ctx.chars);

  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kFixedResistor;
  opt.fixed_resistance = 1e3;  // the paper's 1 kOhm linear drive
  opt.align_aggressors = false;
  opt.tstop = 3e-9;
  opt.dt = 4e-12;
  // Classic SPICE behavior: refactor the MNA matrix at every step (the
  // linear-circuit caching shortcut is an anachronism for this baseline).
  opt.spice_exploit_linearity = false;

  SummaryStats err_pct;
  Histogram hist(-2.0, 2.0, 16);
  double mor_cpu = 0.0, spice_cpu = 0.0;
  std::size_t analyzed = 0;
  std::size_t min_aggs = 99, max_aggs = 0;

  for (std::size_t v = 0; v < design.nets.size() && analyzed < 113; ++v) {
    if (pruned.retained[v].size() < 2) continue;  // want 2-12 aggressors
    auto [victim, aggressors] =
        verifier.build_victim_cluster(design, summaries, pruned, v);
    if (aggressors.size() < 2) continue;
    if (aggressors.size() > 12) aggressors.resize(12);

    // Aggressive reduction (a single block iteration, order = port count):
    // this is the regime where the matrix-Padé approximation shows
    // sub-percent — but nonzero — peak errors, as in the paper's
    // distribution.
    opt.mor.max_order = 2 * (1 + aggressors.size());

    const GlitchResult mor = analyzer.analyze(victim, aggressors, opt);
    const GlitchResult spice = analyzer.analyze_spice(victim, aggressors, opt);
    if (std::fabs(spice.peak) < 0.02) continue;  // no measurable peak

    // Negative error = MPVL overestimates w.r.t. SPICE (paper convention).
    const double err =
        100.0 * (std::fabs(spice.peak) - std::fabs(mor.peak)) / std::fabs(spice.peak);
    err_pct.add(err);
    hist.add(err);
    mor_cpu += mor.cpu_seconds;
    spice_cpu += spice.cpu_seconds;
    min_aggs = std::min(min_aggs, aggressors.size());
    max_aggs = std::max(max_aggs, aggressors.size());
    ++analyzed;
  }

  std::printf("\n== Figure 3: MPVL vs SPICE crosstalk-peak error, %zu coupled "
              "networks (aggressors %zu-%zu), linear 1 kOhm drive ==\n\n",
              analyzed, min_aggs, max_aggs);
  std::printf("%s\n", hist.to_ascii(44).c_str());
  const double max_abs =
      std::max(std::fabs(err_pct.min()), std::fabs(err_pct.max()));
  std::printf("error %%: %s\n", err_pct.to_string(3).c_str());
  std::printf("max |error| %.3f%%\n", max_abs);
  std::printf("cpu: SPICE %.2f s, MPVL %.2f s -> speed-up %.1fx\n", spice_cpu,
              mor_cpu, spice_cpu / std::max(mor_cpu, 1e-12));
  const bool pass = analyzed >= 100 && max_abs < 5.0;
  std::printf("paper shape check — sub-percent-class engine agreement on "
              ">=100 networks: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
