// Staged-pipeline benchmark (DESIGN.md §11): the reduced-model cache and
// the per-thread workspace arena on their intended workload — a row-tiled
// DSP-class design where every standard-cell row repeats the same cluster
// pencils. Measures verify() with the cache off vs on (threads >= 4), the
// realized cache hit rate, and the workspace allocator traffic per victim,
// and writes BENCH_pipeline.json for the nightly trend job.
//
// Claims under test (the PR's acceptance bar):
//  - cache hit rate > 30% on the tiled design (each row past the first
//    should hit for nearly every victim);
//  - cached wall-clock >= 1.3x faster than no-cache on the same design;
//  - findings bit-identical between the two runs (the hit-reuse doctrine);
//  - workspace pool hits dominate misses once the arenas are warm.
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "util/workspace.h"

using namespace xtv;

namespace {

/// Bitwise comparison of the per-victim results of two reports.
bool findings_identical(const VerificationReport& a,
                        const VerificationReport& b) {
  if (a.findings.size() != b.findings.size()) return false;
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    const VictimFinding& x = a.findings[i];
    const VictimFinding& y = b.findings[i];
    if (x.net != y.net || std::memcmp(&x.peak, &y.peak, sizeof(x.peak)) != 0 ||
        x.status != y.status || x.retries != y.retries ||
        x.reduced_order != y.reduced_order || x.certified != y.certified ||
        std::memcmp(&x.cert_max_rel_err, &y.cert_max_rel_err,
                    sizeof(double)) != 0)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Staged pipeline: model cache + workspace arena ==\n\n");

  std::size_t net_count = 400;
  std::size_t rows = 4;
  std::size_t threads = 4;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--nets") == 0)
      net_count = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    else if (std::strcmp(argv[i], "--rows") == 0)
      rows = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    else if (std::strcmp(argv[i], "--threads") == 0)
      threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
  }

  bench::Context ctx;
  DspChipOptions chip_opt;
  chip_opt.net_count = net_count;
  chip_opt.tracks = 8 * rows;
  chip_opt.replicate_rows = rows;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_opt);
  ChipVerifier verifier(ctx.extractor, ctx.chars);

  VerifierOptions nocache;
  nocache.glitch.align_aggressors = false;
  nocache.glitch.tstop = 3e-9;
  nocache.certify = true;  // cache reuse also skips certification probes
  nocache.threads = threads;

  VerifierOptions cached = nocache;
  cached.model_cache_mb = 64.0;

  std::printf("design: %zu nets in %zu identical rows, %zu threads\n\n",
              design.nets.size(), rows, threads);

  // Warm-up pass characterizes the cells and the thread-pool arenas so
  // both timed passes see identical conditions.
  (void)verifier.verify(design, nocache);
  ctx.chars.save(bench::kCellCachePath);

  workspace::reset_stats();
  const VerificationReport r_off = verifier.verify(design, nocache);
  const workspace::Stats ws_off = workspace::stats();

  workspace::reset_stats();
  const VerificationReport r_on = verifier.verify(design, cached);
  const workspace::Stats ws_on = workspace::stats();

  const std::size_t lookups = r_on.model_cache_hits + r_on.model_cache_misses;
  const double hit_rate =
      lookups > 0
          ? static_cast<double>(r_on.model_cache_hits) /
                static_cast<double>(lookups)
          : 0.0;
  const double speedup = r_on.wall_seconds > 0.0
                             ? r_off.wall_seconds / r_on.wall_seconds
                             : 0.0;
  const bool identical = findings_identical(r_off, r_on);
  const double victims =
      static_cast<double>(r_off.victims_eligible > 0 ? r_off.victims_eligible
                                                     : 1);

  std::printf("cache off : %8.3f s wall, %.1f s cpu\n", r_off.wall_seconds,
              r_off.total_cpu_seconds);
  std::printf("  workspace: %zu acquires (%.1f per victim), %zu pool hits, "
              "%zu misses, %.1f MiB reused\n",
              ws_off.acquires, static_cast<double>(ws_off.acquires) / victims,
              ws_off.pool_hits, ws_off.pool_misses,
              static_cast<double>(ws_off.reused_bytes) / (1024.0 * 1024.0));
  std::printf("cache on  : %8.3f s wall, %.1f s cpu (%.2fx)\n",
              r_on.wall_seconds, r_on.total_cpu_seconds, speedup);
  std::printf("  model cache: %zu hits / %zu lookups (%.0f%% hit rate), "
              "%zu entries, %.1f MiB, %zu evictions\n",
              r_on.model_cache_hits, lookups, 100.0 * hit_rate,
              r_on.model_cache_entries,
              static_cast<double>(r_on.model_cache_bytes) / (1024.0 * 1024.0),
              r_on.model_cache_evictions);
  std::printf("  workspace: %zu acquires (%.1f per victim), %zu pool hits, "
              "%zu misses\n",
              ws_on.acquires, static_cast<double>(ws_on.acquires) / victims,
              ws_on.pool_hits, ws_on.pool_misses);
  std::printf("findings bit-identical: %s\n", identical ? "yes" : "NO");
  std::printf("\ntargets: hit rate > 30%% -> %s, speedup >= 1.3x -> %s\n",
              hit_rate > 0.30 ? "MET" : "MISSED",
              speedup >= 1.3 ? "MET" : "MISSED");

  FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"nets\": %zu,\n", design.nets.size());
    std::fprintf(json, "  \"rows\": %zu,\n", rows);
    std::fprintf(json, "  \"threads\": %zu,\n", threads);
    std::fprintf(json, "  \"victims_eligible\": %zu,\n",
                 r_off.victims_eligible);
    std::fprintf(json, "  \"wall_s_cache_off\": %.6f,\n", r_off.wall_seconds);
    std::fprintf(json, "  \"wall_s_cache_on\": %.6f,\n", r_on.wall_seconds);
    std::fprintf(json, "  \"speedup\": %.4f,\n", speedup);
    std::fprintf(json, "  \"cache_hits\": %zu,\n", r_on.model_cache_hits);
    std::fprintf(json, "  \"cache_misses\": %zu,\n", r_on.model_cache_misses);
    std::fprintf(json, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
    std::fprintf(json, "  \"cache_entries\": %zu,\n", r_on.model_cache_entries);
    std::fprintf(json, "  \"cache_bytes\": %zu,\n", r_on.model_cache_bytes);
    std::fprintf(json, "  \"cache_evictions\": %zu,\n",
                 r_on.model_cache_evictions);
    std::fprintf(json, "  \"workspace_acquires_per_victim\": %.3f,\n",
                 static_cast<double>(ws_on.acquires) / victims);
    std::fprintf(json, "  \"workspace_pool_hits\": %zu,\n", ws_on.pool_hits);
    std::fprintf(json, "  \"workspace_pool_misses\": %zu,\n",
                 ws_on.pool_misses);
    std::fprintf(json, "  \"workspace_reused_mib\": %.3f,\n",
                 static_cast<double>(ws_on.reused_bytes) / (1024.0 * 1024.0));
    std::fprintf(json, "  \"findings_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(json, "  \"hit_rate_target\": 0.30,\n");
    std::fprintf(json, "  \"speedup_target\": 1.3,\n");
    std::fprintf(json, "  \"targets_met\": %s\n",
                 hit_rate > 0.30 && speedup >= 1.3 && identical ? "true"
                                                                : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_pipeline.json\n");
  }
  return identical ? 0 : 1;
}
