// google-benchmark microbenchmarks for the numeric kernels the paper's
// methodology leans on: sparse LU (the SPICE baseline's inner loop),
// Cholesky + block-Lanczos reduction (SyMPVL), the diagonalized reduced-
// system Newton step (rank-m Woodbury), and the full cluster analysis.
#include <benchmark/benchmark.h>

#include "cells/cell_library.h"
#include "linalg/cholesky.h"
#include "linalg/ordering.h"
#include "linalg/sparse_lu.h"
#include "mor/reduced_sim.h"
#include "mor/sympvl.h"
#include "netlist/rc_network.h"
#include "extract/extractor.h"
#include "util/prng.h"

namespace xtv {
namespace {

SparseMatrix grid_matrix(std::size_t k) {
  const std::size_t n = k * k;
  TripletList t(n, n);
  auto id = [k](std::size_t r, std::size_t c) { return r * k + c; };
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      double deg = 0.0;
      auto stamp = [&](std::size_t other) {
        t.add(id(r, c), other, -1.0);
        deg += 1.0;
      };
      if (r > 0) stamp(id(r - 1, c));
      if (r + 1 < k) stamp(id(r + 1, c));
      if (c > 0) stamp(id(r, c - 1));
      if (c + 1 < k) stamp(id(r, c + 1));
      t.add(id(r, c), id(r, c), deg + 0.01);
    }
  }
  return SparseMatrix::from_triplets(t);
}

void BM_SparseLuFactor(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const SparseMatrix m = grid_matrix(k);
  const auto order = min_degree_order(m);
  for (auto _ : state) {
    SparseLu lu(m, order);
    benchmark::DoNotOptimize(lu.factor_nnz());
  }
  state.SetLabel(std::to_string(k * k) + " nodes");
}
BENCHMARK(BM_SparseLuFactor)->Arg(8)->Arg(16)->Arg(32);

void BM_SparseLuSolve(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const SparseMatrix m = grid_matrix(k);
  SparseLu lu(m, min_degree_order(m));
  Vector b(k * k, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(8)->Arg(16)->Arg(32);

RcNetwork bench_cluster(int stages) {
  Extractor ex(Technology::default_250nm());
  RcNetwork net = ex.extract_parallel3(stages * 100e-6);
  for (std::size_t p = 0; p < net.port_count(); ++p)
    net.stamp_port_conductance(p, p % 2 == 0 ? 1e-3 : 1e-9);
  return net;
}

void BM_CholeskyFactor(benchmark::State& state) {
  RcNetwork net = bench_cluster(static_cast<int>(state.range(0)));
  const DenseMatrix g = net.g_matrix();
  for (auto _ : state) {
    Cholesky chol(g);
    benchmark::DoNotOptimize(chol.size());
  }
  state.SetLabel(std::to_string(g.rows()) + " nodes");
}
BENCHMARK(BM_CholeskyFactor)->Arg(5)->Arg(10)->Arg(20);

void BM_SympvlReduce(benchmark::State& state) {
  RcNetwork net = bench_cluster(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ReducedModel model = sympvl_reduce(net);
    benchmark::DoNotOptimize(model.order());
  }
}
BENCHMARK(BM_SympvlReduce)->Arg(5)->Arg(10)->Arg(20);

void BM_ReducedTransient(benchmark::State& state) {
  RcNetwork net = bench_cluster(10);
  ReducedModel model = sympvl_reduce(net);
  for (auto _ : state) {
    ReducedSimulator sim(model);
    sim.set_input(2, SourceWave::ramp(0.0, 3e-3, 0.3e-9, 0.1e-9));
    ReducedSimOptions opt;
    opt.tstop = 3e-9;
    opt.dt = static_cast<double>(state.range(0)) * 1e-12;
    benchmark::DoNotOptimize(sim.run(opt).steps);
  }
  state.SetLabel("dt=" + std::to_string(state.range(0)) + "ps");
}
BENCHMARK(BM_ReducedTransient)->Arg(1)->Arg(4);

void BM_MinDegreeOrder(benchmark::State& state) {
  const SparseMatrix m = grid_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_degree_order(m).size());
  }
}
BENCHMARK(BM_MinDegreeOrder)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace xtv

BENCHMARK_MAIN();
