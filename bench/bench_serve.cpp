// Serve-mode throughput benchmark (DESIGN.md §13): concurrent job
// runners under the cross-job resource governor vs the serial daemon.
// Forks one daemon per round (max_running 1, then 4), pushes the same
// batch of jobs through each over concurrent client connections, and
// measures per-job turnaround (submit -> terminal) plus the batch
// makespan. Writes BENCH_serve.json for the nightly trend job.
//
// Claims under test (the PR's acceptance bar):
//  - jobs/min at max_running=4 >= 2.5x the max_running=1 rate (needs
//    >= 4 cores; a 1-core box still validates the invariants below);
//  - zero lost findings: every job reports the full per-victim set;
//  - zero duplicated findings (the exactly-once streaming contract);
//  - findings bit-identical across every job and both rounds (the jobs
//    differ only in audit_seed, which never changes findings).
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/journal.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/job.h"
#include "util/timer.h"

using namespace xtv;

namespace {

struct JobOutcome {
  bool ok = false;
  std::string error;
  double turnaround_s = 0.0;
  serve::JobResult result;
};

struct RoundStats {
  std::size_t max_running = 0;
  double makespan_s = 0.0;
  double p95_turnaround_s = 0.0;
  double jobs_per_min = 0.0;
  std::size_t duplicate_findings = 0;
  std::vector<JobOutcome> outcomes;
};

/// Forks a ServeDaemon and blocks until its socket accepts connections.
pid_t start_daemon(const serve::DaemonOptions& opt) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    serve::ServeDaemon daemon(opt);
    ::_exit(daemon.run());
  }
  if (pid < 0) return -1;
  for (int i = 0; i < 2400; ++i) {
    serve::ServeClient probe;
    std::string err;
    if (probe.connect(opt.socket_path, &err)) return pid;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) != 0) {
      std::fprintf(stderr, "daemon exited during startup (status %d)\n",
                   status);
      return -1;
    }
    ::usleep(50000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return -1;
}

/// SIGTERM + wait; true on a clean (exit 0) drain.
bool drain_daemon(pid_t pid) {
  ::kill(pid, SIGTERM);
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return false;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

void remove_tree(const std::string& path) {
  const std::string cmd = "rm -rf '" + path + "'";
  (void)std::system(cmd.c_str());
}

double percentile95(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      std::min(v.size() - 1,
               static_cast<std::size_t>(0.95 * static_cast<double>(v.size())));
  return v[idx];
}

/// One daemon lifetime: submit every spec over its own connection from
/// its own thread, wait for all terminals, drain.
bool run_round(std::size_t max_running, const std::string& work_dir,
               std::size_t nets, const std::vector<serve::JobSpec>& specs,
               RoundStats* stats) {
  const std::string dir =
      work_dir + "/round_r" + std::to_string(max_running);
  remove_tree(dir);
  if (::mkdir(dir.c_str(), 0755) != 0) {
    std::fprintf(stderr, "mkdir %s failed\n", dir.c_str());
    return false;
  }

  serve::DaemonOptions opt;
  opt.socket_path = dir + "/s.sock";
  opt.jobs_dir = dir + "/jobs";
  opt.net_count = nets;
  opt.queue_capacity = specs.size() + 2;
  opt.max_running = max_running;
  opt.default_processes = 1;
  opt.cell_cache = "xtv_cells.cache";  // share characterization across rounds

  const pid_t daemon = start_daemon(opt);
  if (daemon < 0) return false;

  stats->max_running = max_running;
  stats->outcomes.assign(specs.size(), JobOutcome{});

  Timer batch;
  std::vector<std::thread> threads;
  threads.reserve(specs.size());
  for (std::size_t j = 0; j < specs.size(); ++j) {
    threads.emplace_back([&, j] {
      JobOutcome& out = stats->outcomes[j];
      serve::ServeClient client;
      if (!client.connect(opt.socket_path, &out.error)) return;
      Timer t;
      out.ok = serve::submit_and_wait(client, specs[j], 1800000.0,
                                      &out.result, &out.error);
      out.turnaround_s = t.elapsed();
    });
  }
  for (auto& t : threads) t.join();
  stats->makespan_s = batch.elapsed();

  const bool drained = drain_daemon(daemon);
  if (!drained) std::fprintf(stderr, "daemon drain was not clean\n");

  std::vector<double> turnarounds;
  bool all_ok = drained;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    const JobOutcome& out = stats->outcomes[j];
    if (!out.ok) {
      std::fprintf(stderr, "job %zu failed: %s\n", j, out.error.c_str());
      all_ok = false;
      continue;
    }
    turnarounds.push_back(out.turnaround_s);
    stats->duplicate_findings += out.result.duplicate_findings;
    std::printf("  job %zu: %s in %.2f s, %zu findings (%s)\n", j,
                job_state_name(out.result.state), out.turnaround_s,
                out.result.findings.size(), out.result.summary.c_str());
  }
  stats->p95_turnaround_s = percentile95(turnarounds);
  stats->jobs_per_min =
      stats->makespan_s > 0.0
          ? 60.0 * static_cast<double>(specs.size()) / stats->makespan_s
          : 0.0;
  return all_ok;
}

/// Bitwise comparison via the canonical journal encoding, with the one
/// wall-clock field (cpu_seconds) zeroed — every analytical field must
/// match exactly, but compute time legitimately varies run to run.
std::string normalized_encoding(const JournalRecord& record) {
  JournalRecord copy = record;
  copy.finding.cpu_seconds = 0.0;
  return journal_encode(copy);
}

bool findings_identical(const std::map<std::size_t, JournalRecord>& a,
                        const std::map<std::size_t, JournalRecord>& b) {
  if (a.size() != b.size()) return false;
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    if (normalized_encoding(ia->second) != normalized_encoding(ib->second))
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Serve throughput: concurrent runners vs serial ==\n\n");

  std::size_t nets = 80;
  std::size_t jobs = 6;
  std::size_t concurrent_running = 4;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--nets") == 0)
      nets = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    else if (std::strcmp(argv[i], "--jobs") == 0)
      jobs = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    else if (std::strcmp(argv[i], "--max-running") == 0)
      concurrent_running = static_cast<std::size_t>(std::atoi(argv[i + 1]));
  }
  if (jobs == 0) jobs = 1;

  // Distinct audit_seed per job: each spec hashes to its own job key (no
  // dedup between jobs) while audit_fraction=0 keeps findings identical.
  std::vector<serve::JobSpec> specs(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    specs[j].options.audit_seed = 7000 + j;
    specs[j].processes = 1;
  }

  std::string work_dir = "bench_serve_work." + std::to_string(::getpid());
  remove_tree(work_dir);
  if (::mkdir(work_dir.c_str(), 0755) != 0) {
    std::fprintf(stderr, "mkdir %s failed\n", work_dir.c_str());
    return 1;
  }

  std::printf("design: %zu nets, %zu jobs, %u cores\n\n", nets, jobs,
              std::thread::hardware_concurrency());

  RoundStats serial, concurrent;
  bool ok = true;
  std::printf("[round 1/2] max_running=1 ...\n");
  ok = run_round(1, work_dir, nets, specs, &serial) && ok;
  std::printf("  %.1f s makespan, p95 turnaround %.1f s, %.2f jobs/min\n",
              serial.makespan_s, serial.p95_turnaround_s,
              serial.jobs_per_min);
  std::printf("[round 2/2] max_running=%zu ...\n", concurrent_running);
  ok = run_round(concurrent_running, work_dir, nets, specs, &concurrent) && ok;
  std::printf("  %.1f s makespan, p95 turnaround %.1f s, %.2f jobs/min\n\n",
              concurrent.makespan_s, concurrent.p95_turnaround_s,
              concurrent.jobs_per_min);

  // Correctness invariants: every job in both rounds carries the exact
  // same per-victim set, streamed exactly once.
  std::size_t lost_jobs = 0;
  std::size_t duplicates =
      serial.duplicate_findings + concurrent.duplicate_findings;
  const std::map<std::size_t, JournalRecord>* baseline = nullptr;
  for (const RoundStats* round : {&serial, &concurrent}) {
    for (const JobOutcome& out : round->outcomes) {
      if (!out.ok || out.result.findings.empty()) {
        ++lost_jobs;
        continue;
      }
      if (!baseline) baseline = &out.result.findings;
      else if (!findings_identical(*baseline, out.result.findings))
        ++lost_jobs;
    }
  }
  const std::size_t findings_per_job = baseline ? baseline->size() : 0;
  const bool identical = ok && lost_jobs == 0 && duplicates == 0;
  const double speedup = serial.jobs_per_min > 0.0
                             ? concurrent.jobs_per_min / serial.jobs_per_min
                             : 0.0;

  std::printf("findings: %zu per job, %zu divergent/lost jobs, "
              "%zu duplicated streams\n",
              findings_per_job, lost_jobs, duplicates);
  std::printf("throughput: %.2f -> %.2f jobs/min (%.2fx)\n",
              serial.jobs_per_min, concurrent.jobs_per_min, speedup);
  std::printf("\ntargets: speedup >= 2.5x -> %s, exactly-once + identical "
              "-> %s\n",
              speedup >= 2.5 ? "MET" : "MISSED",
              identical ? "MET" : "MISSED");

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"nets\": %zu,\n", nets);
    std::fprintf(json, "  \"jobs\": %zu,\n", jobs);
    std::fprintf(json, "  \"cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(json, "  \"max_running_concurrent\": %zu,\n",
                 concurrent_running);
    std::fprintf(json, "  \"makespan_s_serial\": %.3f,\n", serial.makespan_s);
    std::fprintf(json, "  \"makespan_s_concurrent\": %.3f,\n",
                 concurrent.makespan_s);
    std::fprintf(json, "  \"p95_turnaround_s_serial\": %.3f,\n",
                 serial.p95_turnaround_s);
    std::fprintf(json, "  \"p95_turnaround_s_concurrent\": %.3f,\n",
                 concurrent.p95_turnaround_s);
    std::fprintf(json, "  \"jobs_per_min_serial\": %.4f,\n",
                 serial.jobs_per_min);
    std::fprintf(json, "  \"jobs_per_min_concurrent\": %.4f,\n",
                 concurrent.jobs_per_min);
    std::fprintf(json, "  \"speedup\": %.4f,\n", speedup);
    std::fprintf(json, "  \"findings_per_job\": %zu,\n", findings_per_job);
    std::fprintf(json, "  \"lost_jobs\": %zu,\n", lost_jobs);
    std::fprintf(json, "  \"duplicate_findings\": %zu,\n", duplicates);
    std::fprintf(json, "  \"findings_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(json, "  \"speedup_target\": 2.5,\n");
    std::fprintf(json, "  \"targets_met\": %s\n",
                 speedup >= 2.5 && identical ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_serve.json\n");
  }

  remove_tree(work_dir);
  // The speedup target needs cores; identity and exactly-once do not.
  return identical ? 0 : 1;
}
