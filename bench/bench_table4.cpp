// Table 4: non-linear cell model vs transistor-level SPICE, rising glitch
// (Vdd = 3.0). The paper reports ~400 cases over 53 cells, >85% of cases
// within 10% of full SPICE, and only two cases above 50% (overestimates).
#include <cstdio>

#include "bench_model_accuracy.h"

using namespace xtv;

int main() {
  bench::Context ctx;
  std::vector<std::string> all_cells;
  for (std::size_t i = 0; i < ctx.library.size(); ++i)
    all_cells.push_back(ctx.library.at(i).name());
  ctx.warm_cells(all_cells);

  std::printf("== Table 4: non-linear cell model vs SPICE, rising glitch "
              "(Vdd = 3.0) ==\n\n");

  const std::vector<double> lengths_um = {10,   50,   150,  400,
                                          1000, 2000, 3500, 5000};
  const bench::AccuracySweepResult result = bench::run_model_accuracy(
      ctx, DriverModelKind::kNonlinearTable, lengths_um);
  bench::print_binned_errors(result);
  return result.cases.empty() ? 1 : 0;
}
