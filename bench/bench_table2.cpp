// Table 2: victim interconnect delay with vs without coupling for the
// Figure-1 circuits (ckt1..ckt4 = 100/1000/2000/4000 um coupled length).
// "Without": coupling caps grounded. "With": aggressors switching in the
// opposite direction (worst case). Same-direction (optimistic) is also
// reported, as discussed in the paper's Section 2 text.
#include <cstdio>

#include "bench_common.h"
#include "core/delay_analyzer.h"
#include "util/units.h"

using namespace xtv;

int main() {
  bench::Context ctx;
  ctx.warm_cells({"INV_X2", "BUF_X4"});

  DelayAnalyzer analyzer(ctx.extractor, ctx.chars);

  std::printf("== Table 2: interconnect delays with/without coupling ==\n");
  std::printf("victim INV_X2 switching; aggressors BUF_X4 opposite "
              "direction (worst case)\n\n");

  AsciiTable table({"ckt", "rise w/o", "rise with", "rise same-dir",
                    "fall w/o", "fall with", "fall same-dir"});

  const double lengths_um[] = {100, 1000, 2000, 4000};
  int idx = 0;
  bool shape_ok = true;
  for (double len_um : lengths_um) {
    ++idx;
    const double len = len_um * units::um;
    VictimSpec victim;
    victim.route = {len, 0.0};
    victim.driver_cell = "INV_X2";
    victim.receiver_cap = 10e-15;

    AggressorSpec agg;
    agg.route = {len, 0.0};
    agg.driver_cell = "BUF_X4";
    agg.input_slew = 0.1e-9;
    agg.receiver_cap = 10e-15;
    agg.run = {0, 0, len, 0.0, 0.0, 0.0};

    DelayAnalysisOptions opt;
    opt.driver_model = DriverModelKind::kLinearResistor;
    opt.tstop = 10e-9;
    opt.dt = 2e-12;

    const CoupledDelayResult rise = analyzer.analyze(victim, true, {agg, agg}, opt);
    const CoupledDelayResult fall = analyzer.analyze(victim, false, {agg, agg}, opt);

    table.add_row({"ckt" + std::to_string(idx),
                   AsciiTable::num_scaled(rise.delay_decoupled, units::ns, "ns", 4),
                   AsciiTable::num_scaled(rise.delay_coupled, units::ns, "ns", 4),
                   AsciiTable::num_scaled(rise.delay_same_dir, units::ns, "ns", 4),
                   AsciiTable::num_scaled(fall.delay_decoupled, units::ns, "ns", 4),
                   AsciiTable::num_scaled(fall.delay_coupled, units::ns, "ns", 4),
                   AsciiTable::num_scaled(fall.delay_same_dir, units::ns, "ns", 4)});

    if (!(rise.delay_coupled > rise.delay_decoupled &&
          fall.delay_coupled > fall.delay_decoupled &&
          rise.delay_same_dir < rise.delay_decoupled))
      shape_ok = false;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper shape check — opposite-phase coupling deteriorates the "
              "delay, same-direction is optimistic: %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
