// Shared sweep for Tables 3 and 4: rising-glitch accuracy of a driver
// model against transistor-level SPICE across the cell library and a range
// of interconnect lengths (the paper used >60 lengths from 10 to 5000 um
// and ~400 cases over 53 cell types at Vdd = 3.0).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/glitch_analyzer.h"
#include "util/stats.h"
#include "util/units.h"

namespace xtv::bench {

struct AccuracyCase {
  std::string victim_cell;
  double length = 0.0;
  double golden_peak = 0.0;  ///< transistor-level rising glitch (V)
  double model_peak = 0.0;   ///< model-under-test rising glitch (V)
  double error_pct = 0.0;    ///< (model - golden) / golden * 100
};

struct AccuracySweepResult {
  std::vector<AccuracyCase> cases;
  double golden_cpu = 0.0;
  double model_cpu = 0.0;
};

/// Runs the sweep: every library cell as the victim holder, lengths cycled
/// per cell from `lengths_um`. The aggressor is a strong buffer rising
/// next to the low-held victim (rising glitch, as in the paper's tables).
inline AccuracySweepResult run_model_accuracy(Context& ctx,
                                              DriverModelKind model_kind,
                                              const std::vector<double>& lengths_um) {
  GlitchAnalyzer analyzer(ctx.extractor, ctx.chars);
  AccuracySweepResult result;

  for (std::size_t c = 0; c < ctx.library.size(); ++c) {
    const std::string victim_cell = ctx.library.at(c).name();
    for (double len_um : lengths_um) {
      const double len = len_um * units::um;
      VictimSpec victim;
      victim.route = {len, 0.0};
      victim.driver_cell = victim_cell;
      victim.held_high = false;  // rising glitch: aggressors pull it up
      victim.receiver_cap = 10e-15;

      AggressorSpec agg;
      agg.route = {len, 0.0};
      agg.driver_cell = "BUF_X8";
      agg.rising = true;
      agg.input_slew = 0.1e-9;
      agg.receiver_cap = 10e-15;
      agg.run = {0, 0, 0.9 * len, 0.0, 0.05 * len, 0.05 * len};

      GlitchAnalysisOptions opt;
      opt.align_aggressors = false;
      opt.tstop = 3e-9;
      opt.dt = 4e-12;

      AccuracyCase acase;
      acase.victim_cell = victim_cell;
      acase.length = len;

      opt.driver_model = DriverModelKind::kTransistor;
      const GlitchResult golden = analyzer.analyze_spice(victim, {agg}, opt);
      acase.golden_peak = golden.peak;
      result.golden_cpu += golden.cpu_seconds;

      opt.driver_model = model_kind;
      const GlitchResult model = analyzer.analyze(victim, {agg}, opt);
      acase.model_peak = model.peak;
      result.model_cpu += model.cpu_seconds;

      if (std::fabs(acase.golden_peak) < 0.05) continue;  // no real glitch
      acase.error_pct =
          100.0 * (acase.model_peak - acase.golden_peak) / acase.golden_peak;
      result.cases.push_back(acase);
    }
  }
  return result;
}

/// Prints the paper-style per-magnitude-bin error summary.
inline void print_binned_errors(const AccuracySweepResult& result) {
  struct Bin {
    double lo, hi;
  };
  const Bin bins[] = {{0.05, 0.3}, {0.3, 0.6}, {0.6, 1.2}, {1.2, 3.5}};
  AsciiTable table({"peak glitch (V)", "cases", "avg err %", "std err %",
                    "min err %", "max err %"});
  for (const Bin& bin : bins) {
    SummaryStats stats;
    for (const auto& c : result.cases)
      if (c.golden_peak >= bin.lo && c.golden_peak < bin.hi)
        stats.add(c.error_pct);
    if (stats.count() == 0) continue;
    char range[48];
    std::snprintf(range, sizeof(range), "%.2f - %.2f", bin.lo, bin.hi);
    table.add_row({range, std::to_string(stats.count()),
                   AsciiTable::num(stats.mean(), 1),
                   AsciiTable::num(stats.stddev(), 1),
                   AsciiTable::num(stats.min(), 1),
                   AsciiTable::num(stats.max(), 1)});
  }
  std::printf("%s", table.to_string().c_str());

  SummaryStats all;
  std::size_t within10 = 0, over50 = 0;
  for (const auto& c : result.cases) {
    all.add(std::fabs(c.error_pct));
    if (std::fabs(c.error_pct) <= 10.0) ++within10;
    if (std::fabs(c.error_pct) > 50.0) ++over50;
  }
  std::printf("\n%zu cases | mean |err| %.1f%% | within 10%%: %.0f%% of cases | "
              ">50%% error: %zu cases\n",
              all.count(), all.mean(),
              100.0 * static_cast<double>(within10) /
                  static_cast<double>(std::max<std::size_t>(all.count(), 1)),
              over50);
  std::printf("cpu: golden %.1f s, model %.1f s (speed-up %.1fx)\n",
              result.golden_cpu, result.model_cpu,
              result.golden_cpu / std::max(result.model_cpu, 1e-9));
}

}  // namespace xtv::bench
