// Remote fan-out throughput benchmark (DESIGN.md §14): leased multi-host
// distribution vs a single worker. Forks a fleet of real xtv_worker
// processes per round (1 worker, then 3), pushes the same batch of jobs
// through a RemoteExecutor per job, and measures per-job turnaround plus
// the batch makespan. Writes BENCH_remote.json for the nightly trend job.
//
// Claims under test (the PR's acceptance bar):
//  - zero lost findings: every job reports the full per-victim set,
//    bit-identical to a direct in-process run (cpu time excepted);
//  - zero duplicated or stale-accepted results (the lease table's
//    exactly-once contract, read back from the coordinator stats);
//  - jobs/min at 3 workers improves on 1 worker (needs >= 4 cores; a
//    starved box still validates the invariants above).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "serve/job.h"
#include "serve/remote.h"
#include "util/timer.h"

using namespace xtv;

namespace {

struct RoundStats {
  std::size_t workers = 0;
  double makespan_s = 0.0;
  double jobs_per_min = 0.0;
  std::size_t findings_lost = 0;    ///< jobs whose findings diverge/miss
  std::size_t duplicates = 0;       ///< lease-table duplicate deliveries
  std::size_t stale_frames = 0;
  std::size_t victims_local = 0;    ///< should be 0: no fallback in a bench
};

pid_t fork_worker(const std::string& ep_file, const std::string& cache,
                  std::size_t coordinators) {
  std::fflush(stdout);
  std::fflush(stderr);
  std::remove(ep_file.c_str());
  const pid_t pid = ::fork();
  if (pid == 0) {
    serve::WorkerOptions wo;
    wo.listen = "127.0.0.1:0";
    wo.endpoint_file = ep_file;
    wo.cell_cache = cache;
    wo.max_coordinators = coordinators;
    ::_exit(serve::run_worker(wo));
  }
  return pid;
}

std::string read_endpoint(const std::string& ep_file) {
  for (int i = 0; i < 400; ++i) {
    std::ifstream in(ep_file);
    std::string ep;
    if (in >> ep && !ep.empty()) return ep;
    ::usleep(50000);
  }
  return "";
}

/// Everything but the re-measured wall clock must match the direct run.
bool finding_identical(const VictimFinding& a, const VictimFinding& b) {
  return a.net == b.net && a.peak == b.peak &&
         a.peak_fraction == b.peak_fraction && a.violation == b.violation &&
         a.status == b.status && a.retries == b.retries &&
         a.aggressors_analyzed == b.aggressors_analyzed &&
         a.reduced_order == b.reduced_order;
}

bool run_round(std::size_t n_workers, std::size_t jobs,
               const serve::JobSpec& spec, ChipVerifier& verifier,
               const ChipDesign& design, const std::string& cache,
               const VerificationReport& reference, RoundStats* stats) {
  stats->workers = n_workers;

  std::vector<pid_t> pids;
  std::vector<std::string> eps;
  const std::string tag = std::to_string(::getpid());
  for (std::size_t w = 0; w < n_workers; ++w) {
    const std::string ep_file =
        "bench_remote_" + tag + "_" + std::to_string(w) + ".ep";
    const pid_t pid = fork_worker(ep_file, cache, jobs);
    if (pid <= 0) {
      std::fprintf(stderr, "worker fork failed\n");
      return false;
    }
    pids.push_back(pid);
    const std::string ep = read_endpoint(ep_file);
    std::remove(ep_file.c_str());
    if (ep.empty()) {
      std::fprintf(stderr, "worker %zu never published an endpoint\n", w);
      for (pid_t p : pids) ::kill(p, SIGKILL);
      for (pid_t p : pids) ::waitpid(p, nullptr, 0);
      return false;
    }
    eps.push_back(ep);
  }

  bool ok = true;
  Timer batch;
  for (std::size_t j = 0; j < jobs && ok; ++j) {
    VerifierOptions vo = spec.to_options();
    serve::RemoteExecOptions ro;
    ro.workers = eps;
    ro.options_hash = options_result_hash(vo);
    ro.spec_text = spec.to_text();
    serve::RemoteExecutor exec(ro);
    vo.remote_backend = &exec;

    Timer t;
    VerificationReport report;
    try {
      report = verifier.verify(design, vo);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "job %zu threw: %s\n", j, e.what());
      ok = false;
      break;
    }
    const serve::RemoteExecStats& rs = exec.remote_stats();
    stats->duplicates += rs.lease.duplicate_results;
    stats->stale_frames += rs.lease.stale_frames;
    stats->victims_local += rs.victims_local;

    bool identical = report.findings.size() == reference.findings.size();
    for (std::size_t i = 0; identical && i < report.findings.size(); ++i)
      identical = finding_identical(report.findings[i],
                                    reference.findings[i]);
    if (!identical) ++stats->findings_lost;
    std::printf("  job %zu: %.2f s, %zu findings%s\n", j, t.elapsed(),
                report.findings.size(), identical ? "" : " (DIVERGENT)");
  }
  stats->makespan_s = batch.elapsed();
  stats->jobs_per_min =
      stats->makespan_s > 0.0
          ? 60.0 * static_cast<double>(jobs) / stats->makespan_s
          : 0.0;

  for (pid_t p : pids) ::kill(p, SIGKILL);
  for (pid_t p : pids) ::waitpid(p, nullptr, 0);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Remote fan-out throughput: 3 workers vs 1 ==\n\n");

  std::size_t nets = 120;
  std::size_t jobs = 4;
  std::size_t fleet = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--nets") == 0)
      nets = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    else if (std::strcmp(argv[i], "--jobs") == 0)
      jobs = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    else if (std::strcmp(argv[i], "--workers") == 0)
      fleet = static_cast<std::size_t>(std::atoi(argv[i + 1]));
  }
  if (jobs == 0) jobs = 1;
  if (fleet == 0) fleet = 1;

  const Technology tech = Technology::default_250nm();
  CellLibrary library(tech);
  CharacterizedLibrary chars(library);  // defaults: workers must match
  Extractor extractor(tech);
  DspChipOptions chip;
  chip.net_count = nets;
  const ChipDesign design = generate_dsp_chip(library, chip);
  serve::JobSpec spec;  // chip_audit-parity defaults
  spec.design_nets = nets;
  ChipVerifier verifier(extractor, chars);

  std::printf("design: %zu nets, %zu jobs, %u cores\n", nets, jobs,
              std::thread::hardware_concurrency());
  std::printf("reference run (direct, in-process)...\n");
  const VerificationReport reference =
      verifier.verify(design, spec.to_options());
  std::printf("  %zu eligible victims, %zu findings\n\n",
              reference.victims_eligible, reference.findings.size());

  // Warm cell cache: every worker loads the reference run's models, so
  // the measured makespans are distribution overhead + analysis, not
  // recharacterization.
  const std::string cache =
      "bench_remote_cells." + std::to_string(::getpid()) + ".cache";
  chars.save(cache);

  RoundStats single, multi;
  bool ok = true;
  std::printf("[round 1/2] workers=1 ...\n");
  ok = run_round(1, jobs, spec, verifier, design, cache, reference, &single) &&
       ok;
  std::printf("  %.1f s makespan, %.2f jobs/min\n", single.makespan_s,
              single.jobs_per_min);
  std::printf("[round 2/2] workers=%zu ...\n", fleet);
  ok = run_round(fleet, jobs, spec, verifier, design, cache, reference,
                 &multi) &&
       ok;
  std::printf("  %.1f s makespan, %.2f jobs/min\n\n", multi.makespan_s,
              multi.jobs_per_min);
  std::remove(cache.c_str());

  const std::size_t lost = single.findings_lost + multi.findings_lost;
  const std::size_t duplicates = single.duplicates + multi.duplicates;
  const std::size_t fallback = single.victims_local + multi.victims_local;
  const bool exact = ok && lost == 0 && duplicates == 0 && fallback == 0;
  const double speedup = single.jobs_per_min > 0.0
                             ? multi.jobs_per_min / single.jobs_per_min
                             : 0.0;

  std::printf("findings: %zu per job, %zu divergent jobs, %zu duplicated "
              "deliveries, %zu local-fallback victims\n",
              reference.findings.size(), lost, duplicates, fallback);
  std::printf("throughput: %.2f -> %.2f jobs/min (%.2fx)\n",
              single.jobs_per_min, multi.jobs_per_min, speedup);
  std::printf("\ntargets: findings-loss == 0 -> %s, speedup > 1x -> %s\n",
              exact ? "MET" : "MISSED", speedup > 1.0 ? "MET" : "MISSED");

  FILE* json = std::fopen("BENCH_remote.json", "w");
  if (json) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"nets\": %zu,\n", nets);
    std::fprintf(json, "  \"jobs\": %zu,\n", jobs);
    std::fprintf(json, "  \"cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(json, "  \"workers_fleet\": %zu,\n", fleet);
    std::fprintf(json, "  \"makespan_s_1worker\": %.3f,\n", single.makespan_s);
    std::fprintf(json, "  \"makespan_s_fleet\": %.3f,\n", multi.makespan_s);
    std::fprintf(json, "  \"jobs_per_min_1worker\": %.4f,\n",
                 single.jobs_per_min);
    std::fprintf(json, "  \"jobs_per_min_fleet\": %.4f,\n",
                 multi.jobs_per_min);
    std::fprintf(json, "  \"speedup\": %.4f,\n", speedup);
    std::fprintf(json, "  \"findings_per_job\": %zu,\n",
                 reference.findings.size());
    std::fprintf(json, "  \"findings_lost\": %zu,\n", lost);
    std::fprintf(json, "  \"duplicate_deliveries\": %zu,\n", duplicates);
    std::fprintf(json, "  \"stale_frames\": %zu,\n",
                 single.stale_frames + multi.stale_frames);
    std::fprintf(json, "  \"local_fallback_victims\": %zu,\n", fallback);
    std::fprintf(json, "  \"targets_met\": %s\n",
                 exact ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_remote.json\n");
  }

  // Findings loss is the hard bar; the speedup target needs free cores.
  return exact ? 0 : 1;
}
