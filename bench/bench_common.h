// Shared setup for the table/figure reproduction benches: technology, cell
// library, characterization with an on-disk cache (characterization is the
// paper's one-time task — the first bench run pays it, later runs reload).
#pragma once

#include <cstdio>
#include <string>

#include "cells/cell_library.h"
#include "cells/characterize.h"
#include "extract/extractor.h"
#include "util/table.h"
#include "util/timer.h"

namespace xtv::bench {

inline constexpr const char* kCellCachePath = "xtv_cells.cache";

struct Context {
  Technology tech = Technology::default_250nm();
  CellLibrary library{tech};
  CharacterizedLibrary chars{library};
  Extractor extractor{tech};

  Context() {
    const std::size_t loaded = chars.load(kCellCachePath);
    if (loaded > 0)
      std::printf("[setup] loaded %zu cached cell models from %s\n", loaded,
                  kCellCachePath);
  }

  /// Characterizes (or reloads) the named cells up front with progress
  /// output, then persists the cache.
  void warm_cells(const std::vector<std::string>& names) {
    Timer t;
    std::size_t fresh = 0;
    for (const auto& name : names) {
      const bool had = chars.has_model(name);
      chars.model(name);
      if (!had) ++fresh;
    }
    if (fresh > 0) {
      chars.save(kCellCachePath);
      std::printf("[setup] characterized %zu cells in %.1f s (cached to %s)\n",
                  fresh, t.elapsed(), kCellCachePath);
    }
  }
};

}  // namespace xtv::bench
