// Certification overhead benchmark (DESIGN.md §10): a-posteriori residual
// certification adds num_freqs exact sparse solves per accepted MOR result,
// plus whatever upward order escalation the tolerance forces. This bench
// measures verify() on the standard 120-net workload in three modes —
// certify off / certify on / certify + 25% SPICE cross-audit — and writes
// the numbers to BENCH_certification.json for the nightly trend job.
//
// The claim under test: certification costs < 15% end-to-end, because the
// q x q reduced solves and a handful of sparse factorization at shifted
// pencils are small next to the transient simulation of each cluster.
#include <cstdio>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/verifier.h"

using namespace xtv;

int main() {
  std::printf("== Certification overhead ==\n\n");

  bench::Context ctx;
  DspChipOptions chip_opt;
  chip_opt.net_count = 120;
  chip_opt.tracks = 8;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_opt);
  ChipVerifier verifier(ctx.extractor, ctx.chars);

  VerifierOptions off;
  off.glitch.align_aggressors = false;
  off.glitch.tstop = 3e-9;

  VerifierOptions cert = off;
  cert.certify = true;

  VerifierOptions audit = cert;
  audit.audit_fraction = 0.25;

  const VerificationReport warm = verifier.verify(design, off);
  (void)warm;
  const VerificationReport r_off = verifier.verify(design, off);
  const VerificationReport r_cert = verifier.verify(design, cert);
  const VerificationReport r_audit = verifier.verify(design, audit);

  const double cert_overhead =
      100.0 * (r_cert.wall_seconds - r_off.wall_seconds) / r_off.wall_seconds;
  const double audit_overhead =
      100.0 * (r_audit.wall_seconds - r_off.wall_seconds) / r_off.wall_seconds;

  std::printf("verify() on %zu nets (%zu eligible victims):\n",
              design.nets.size(), r_off.victims_eligible);
  std::printf("  certify off          : %8.3f s\n", r_off.wall_seconds);
  std::printf("  certify on           : %8.3f s (%+.1f%%)\n",
              r_cert.wall_seconds, cert_overhead);
  std::printf("    certified %zu, accuracy-bound %zu, %zu order escalations on "
              "%zu victims\n",
              r_cert.victims_certified, r_cert.victims_accuracy_bound,
              r_cert.order_escalations, r_cert.victims_escalated);
  std::printf("  certify + 25%% audit  : %8.3f s (%+.1f%%)\n",
              r_audit.wall_seconds, audit_overhead);
  std::printf("    audited %zu, failures %zu, max peak err %.3g V, max time "
              "err %.3g s\n",
              r_audit.victims_audited, r_audit.audit_failures,
              r_audit.audit_max_peak_err, r_audit.audit_max_time_err);
  std::printf("\ncertify-only overhead target: < 15%% -> %s\n",
              cert_overhead < 15.0 ? "MET" : "MISSED");

  FILE* json = std::fopen("BENCH_certification.json", "w");
  if (json) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"nets\": %zu,\n", design.nets.size());
    std::fprintf(json, "  \"victims_eligible\": %zu,\n", r_off.victims_eligible);
    std::fprintf(json, "  \"wall_s_certify_off\": %.6f,\n", r_off.wall_seconds);
    std::fprintf(json, "  \"wall_s_certify_on\": %.6f,\n", r_cert.wall_seconds);
    std::fprintf(json, "  \"wall_s_certify_audit25\": %.6f,\n",
                 r_audit.wall_seconds);
    std::fprintf(json, "  \"certify_overhead_pct\": %.3f,\n", cert_overhead);
    std::fprintf(json, "  \"audit_overhead_pct\": %.3f,\n", audit_overhead);
    std::fprintf(json, "  \"victims_certified\": %zu,\n",
                 r_cert.victims_certified);
    std::fprintf(json, "  \"victims_accuracy_bound\": %zu,\n",
                 r_cert.victims_accuracy_bound);
    std::fprintf(json, "  \"victims_escalated\": %zu,\n",
                 r_cert.victims_escalated);
    std::fprintf(json, "  \"order_escalations\": %zu,\n",
                 r_cert.order_escalations);
    std::fprintf(json, "  \"victims_audited\": %zu,\n", r_audit.victims_audited);
    std::fprintf(json, "  \"audit_failures\": %zu,\n", r_audit.audit_failures);
    std::fprintf(json, "  \"audit_max_peak_err_v\": %.6g,\n",
                 r_audit.audit_max_peak_err);
    std::fprintf(json, "  \"audit_max_time_err_s\": %.6g,\n",
                 r_audit.audit_max_time_err);
    std::fprintf(json, "  \"overhead_target_pct\": 15.0,\n");
    std::fprintf(json, "  \"overhead_target_met\": %s\n",
                 cert_overhead < 15.0 ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_certification.json\n");
  }
  return 0;
}
