// Batched reduced-transient benchmark (DESIGN.md §16): the SoA lockstep
// batch engine and the canonical (permutation/tolerance-invariant) model
// cache on their intended workloads, writing BENCH_batch.json for the
// nightly trend job.
//
// Claims under test (the PR's acceptance bar):
//  - cache-cold end-to-end wall clock at --batch-width 8 >= 1.3x faster
//    than the scalar engine on a transient-dominated DSP design;
//  - findings bit-identical at every batch width (the lockstep doctrine);
//  - on a load-skewed row-tiled design (where exact fingerprints never
//    re-match across rows) the canonical index recovers a hit rate at
//    least as high as the exact index, with every tolerant reuse gated by
//    a certificate re-pass (rejects are counted, never silently reused);
//  - merged journals are bit-identical across scalar, batched, process-
//    sharded, and torn-then-resumed runs (CPU time is the one per-run
//    field).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/journal.h"
#include "core/verifier.h"

using namespace xtv;

namespace {

/// Bitwise comparison of the per-victim results of two reports.
bool findings_identical(const VerificationReport& a,
                        const VerificationReport& b) {
  if (a.findings.size() != b.findings.size()) return false;
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    const VictimFinding& x = a.findings[i];
    const VictimFinding& y = b.findings[i];
    if (x.net != y.net || std::memcmp(&x.peak, &y.peak, sizeof(x.peak)) != 0 ||
        x.status != y.status || x.retries != y.retries ||
        x.reduced_order != y.reduced_order || x.certified != y.certified ||
        std::memcmp(&x.cert_max_rel_err, &y.cert_max_rel_err,
                    sizeof(double)) != 0)
      return false;
  }
  return true;
}

/// Journal records re-encoded with the per-run CPU-time field zeroed, so
/// two runs' journals compare bit-exactly on everything deterministic.
std::vector<std::string> masked_records(const std::string& path) {
  std::vector<std::string> out;
  for (JournalRecord rec : ResultJournal::load(path).records) {
    rec.finding.cpu_seconds = 0.0;
    out.push_back(journal_encode(rec));
  }
  return out;
}

bool journals_identical(const std::string& a, const std::string& b) {
  const auto la = ResultJournal::load(a);
  const auto lb = ResultJournal::load(b);
  if (!la.has_header || !lb.has_header || la.header_hash != lb.header_hash)
    return false;
  return masked_records(a) == masked_records(b);
}

/// Copies the journal keeping the header plus the first `keep` record
/// lines — a deterministic stand-in for a kill-9 between record batches.
void truncate_journal_copy(const std::string& src, const std::string& dst,
                           std::size_t keep) {
  std::ifstream in(src);
  std::ofstream out(dst, std::ios::trunc);
  std::string line;
  std::size_t records = 0;
  while (std::getline(in, line)) {
    const bool header = line.rfind("xtvjh", 0) == 0;
    if (!header && records++ >= keep) break;
    out << line << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Batched lockstep integration + canonical model cache ==\n\n");

  std::size_t net_count = 300;
  std::size_t rows = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--nets") == 0)
      net_count = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    else if (std::strcmp(argv[i], "--rows") == 0)
      rows = static_cast<std::size_t>(std::atoi(argv[i + 1]));
  }

  bench::Context ctx;
  DspChipOptions chip_opt;
  chip_opt.net_count = net_count;
  chip_opt.tracks = 8 * rows;
  chip_opt.replicate_rows = rows;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_opt);
  ChipVerifier verifier(ctx.extractor, ctx.chars);

  // ---------------------------------------------------------------------
  // Phase 1 — cache-cold lockstep speedup. No model cache, serial, a fine
  // timestep so the reduced transient dominates each victim (the regime
  // batching targets): every victim pays reduction + integration fresh.
  VerifierOptions cold;
  cold.glitch.align_aggressors = false;
  cold.glitch.tstop = 4e-9;
  cold.glitch.dt = 5e-13;
  cold.threads = 1;

  std::printf("design: %zu nets in %zu rows; cache-cold serial sweep\n\n",
              design.nets.size(), rows);

  // Warm-up characterizes the cells and the arenas so every timed pass
  // sees identical conditions.
  (void)verifier.verify(design, cold);
  ctx.chars.save(bench::kCellCachePath);

  const std::size_t widths[] = {1, 4, 8, 16};
  double wall[4] = {0, 0, 0, 0};
  VerificationReport reports[4];
  bool widths_identical = true;
  for (std::size_t w = 0; w < 4; ++w) {
    VerifierOptions o = cold;
    o.batch_width = widths[w];
    reports[w] = verifier.verify(design, o);
    wall[w] = reports[w].wall_seconds;
    if (w > 0 && !findings_identical(reports[0], reports[w]))
      widths_identical = false;
    std::printf("width %2zu : %8.3f s wall  (batched %zu victims, "
                "%zu lane fallbacks)\n",
                widths[w], wall[w], reports[w].batched_victims,
                reports[w].batch_lane_fallbacks);
  }
  const double speedup8 = wall[2] > 0.0 ? wall[0] / wall[2] : 0.0;
  std::printf("\nscalar / width-8 speedup: %.2fx, findings identical: %s\n",
              speedup8, widths_identical ? "yes" : "NO");

  // ---------------------------------------------------------------------
  // Phase 2 — exact vs canonical hit rate. Load-skewed replicas: every
  // row's receiver caps are jittered by ~1e-8 relative, so exact bit
  // fingerprints never re-match across rows while a canonical key at
  // tol 1e-6 still collides — the reuse then has to survive the
  // certificate re-pass against each requester's exact (G, C, B).
  DspChipOptions skew_opt = chip_opt;
  skew_opt.replicate_rows = 4;
  skew_opt.tracks = 8 * 4;
  skew_opt.cluster_repeat_skew = 1e-8;
  const ChipDesign skewed = generate_dsp_chip(ctx.library, skew_opt);

  VerifierOptions exact;
  exact.glitch.align_aggressors = false;
  exact.glitch.tstop = 3e-9;
  exact.threads = 1;
  exact.model_cache_mb = 64.0;

  VerifierOptions canon = exact;
  canon.canonical_cache = true;
  canon.canonical_cache_tol = 1e-6;

  const VerificationReport r_exact = verifier.verify(skewed, exact);
  const VerificationReport r_canon = verifier.verify(skewed, canon);

  const std::size_t lookups_exact =
      r_exact.model_cache_hits + r_exact.model_cache_misses;
  const std::size_t lookups_canon =
      r_canon.model_cache_hits + r_canon.model_cache_misses;
  const double rate_exact =
      lookups_exact ? static_cast<double>(r_exact.model_cache_hits) /
                          static_cast<double>(lookups_exact)
                    : 0.0;
  const double rate_canon =
      lookups_canon
          ? static_cast<double>(r_canon.model_cache_hits +
                                r_canon.canonical_hits) /
                static_cast<double>(lookups_canon)
          : 0.0;
  std::printf("\nskewed design (%zu nets, 4 rows, skew 1e-8):\n",
              skewed.nets.size());
  std::printf("  exact keys     : %zu hits / %zu lookups (%.0f%%)\n",
              r_exact.model_cache_hits, lookups_exact, 100.0 * rate_exact);
  std::printf("  canonical keys : %zu exact + %zu certified canonical "
              "/ %zu lookups (%.0f%%), %zu cert rejects\n",
              r_canon.model_cache_hits, r_canon.canonical_hits, lookups_canon,
              100.0 * rate_canon, r_canon.canonical_cert_rejects);

  // ---------------------------------------------------------------------
  // Phase 3 — journal identity: scalar, batched, process-sharded, and
  // torn-then-resumed runs must finalize bit-identical journals (CPU
  // seconds masked; it is the one legitimately per-run field).
  const std::string j_scalar = "bench_batch_scalar.journal";
  const std::string j_batch = "bench_batch_w8.journal";
  const std::string j_proc = "bench_batch_p4.journal";
  const std::string j_resume = "bench_batch_resume.journal";

  VerifierOptions jopt;
  jopt.glitch.align_aggressors = false;
  jopt.glitch.tstop = 3e-9;
  jopt.threads = 1;

  jopt.journal_path = j_scalar;
  (void)verifier.verify(design, jopt);

  jopt.journal_path = j_batch;
  jopt.batch_width = 8;
  (void)verifier.verify(design, jopt);

  jopt.journal_path = j_proc;
  jopt.batch_width = 1;
  jopt.processes = 4;
  (void)verifier.verify(design, jopt);
  jopt.processes = 0;

  // Tear the batched journal in half, then resume it batched.
  const std::size_t total = ResultJournal::load(j_batch).records.size();
  truncate_journal_copy(j_batch, j_resume, total / 2);
  jopt.journal_path = j_resume;
  jopt.batch_width = 8;
  jopt.resume = true;
  (void)verifier.verify(design, jopt);

  const bool j_ok = journals_identical(j_scalar, j_batch) &&
                    journals_identical(j_scalar, j_proc) &&
                    journals_identical(j_scalar, j_resume);
  std::printf("\njournals bit-identical (scalar/batched/processes/resumed): "
              "%s\n",
              j_ok ? "yes" : "NO");
  std::remove(j_scalar.c_str());
  std::remove(j_batch.c_str());
  std::remove(j_proc.c_str());
  std::remove(j_resume.c_str());

  const bool identical = widths_identical && j_ok;
  const bool targets_met = identical && speedup8 >= 1.3 &&
                           rate_canon >= rate_exact &&
                           reports[2].batched_victims > 0;
  std::printf("\ntargets: speedup >= 1.3x -> %s, canonical rate >= exact "
              "rate -> %s\n",
              speedup8 >= 1.3 ? "MET" : "MISSED",
              rate_canon >= rate_exact ? "MET" : "MISSED");

  FILE* json = std::fopen("BENCH_batch.json", "w");
  if (json) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"nets\": %zu,\n", design.nets.size());
    std::fprintf(json, "  \"rows\": %zu,\n", rows);
    std::fprintf(json, "  \"victims_eligible\": %zu,\n",
                 reports[0].victims_eligible);
    std::fprintf(json, "  \"wall_s_width1\": %.6f,\n", wall[0]);
    std::fprintf(json, "  \"wall_s_width4\": %.6f,\n", wall[1]);
    std::fprintf(json, "  \"wall_s_width8\": %.6f,\n", wall[2]);
    std::fprintf(json, "  \"wall_s_width16\": %.6f,\n", wall[3]);
    std::fprintf(json, "  \"speedup_width8\": %.4f,\n", speedup8);
    std::fprintf(json, "  \"batched_victims_width8\": %zu,\n",
                 reports[2].batched_victims);
    std::fprintf(json, "  \"batch_lane_fallbacks_width8\": %zu,\n",
                 reports[2].batch_lane_fallbacks);
    std::fprintf(json, "  \"exact_hit_rate\": %.4f,\n", rate_exact);
    std::fprintf(json, "  \"canonical_hit_rate\": %.4f,\n", rate_canon);
    std::fprintf(json, "  \"canonical_hits\": %zu,\n", r_canon.canonical_hits);
    std::fprintf(json, "  \"canonical_cert_rejects\": %zu,\n",
                 r_canon.canonical_cert_rejects);
    std::fprintf(json, "  \"findings_identical\": %s,\n",
                 widths_identical ? "true" : "false");
    std::fprintf(json, "  \"journals_identical\": %s,\n",
                 j_ok ? "true" : "false");
    std::fprintf(json, "  \"speedup_target\": 1.3,\n");
    std::fprintf(json, "  \"targets_met\": %s\n",
                 targets_met ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_batch.json\n");
  }
  return identical ? 0 : 1;
}
