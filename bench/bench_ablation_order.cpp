// MOR ablation: reduced-order sweep on a representative coupled cluster —
// accuracy of the victim glitch peak vs SPICE, reduction + simulation cost,
// and the speed-up trade-off the paper quotes (15x at sub-percent error).
// Also ablates the reduced-integrator method (TRAP vs BE) and the
// full-reorthogonalization Lanczos sweep's passivity guarantee.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/glitch_analyzer.h"
#include "mor/reduced_sim.h"
#include "util/units.h"

using namespace xtv;

int main() {
  bench::Context ctx;
  ctx.warm_cells({"INV_X2", "BUF_X8", "INV_X4"});
  GlitchAnalyzer analyzer(ctx.extractor, ctx.chars);

  // A 5-aggressor cluster, 1 kOhm linear drive (the Fig-3 configuration).
  VictimSpec victim;
  victim.route = {1500 * units::um, 0.0};
  victim.driver_cell = "INV_X2";
  victim.held_high = true;
  victim.receiver_cap = 10e-15;
  std::vector<AggressorSpec> aggressors;
  for (int k = 0; k < 5; ++k) {
    AggressorSpec agg;
    agg.route = {(600.0 + 250.0 * k) * units::um, 0.0};
    agg.driver_cell = (k % 2) ? "BUF_X8" : "INV_X4";
    agg.rising = false;
    agg.input_slew = 0.1e-9 + 0.05e-9 * k;
    agg.receiver_cap = 10e-15;
    agg.run = {0, 0, (400.0 + 150.0 * k) * units::um, 0.0, 0.0, 0.0};
    aggressors.push_back(agg);
  }

  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kFixedResistor;
  opt.fixed_resistance = 1e3;
  opt.align_aggressors = false;
  opt.tstop = 3e-9;
  opt.dt = 2e-12;
  opt.spice_exploit_linearity = false;  // classic SPICE baseline

  const GlitchResult golden = analyzer.analyze_spice(victim, aggressors, opt);
  std::printf("== MOR order ablation: 6-net cluster, SPICE golden peak %.4f V "
              "(%.3f s) ==\n\n", golden.peak, golden.cpu_seconds);

  AsciiTable table({"max order", "actual order", "peak (V)", "err %",
                    "cpu (s)", "speed-up"});
  bool monotone_ok = true;
  double prev_err = 1e9;
  for (std::size_t q : {6u, 12u, 18u, 24u, 36u, 48u}) {
    opt.mor.max_order = q;
    const GlitchResult mor = analyzer.analyze(victim, aggressors, opt);
    const double err =
        100.0 * std::fabs(std::fabs(mor.peak) - std::fabs(golden.peak)) /
        std::fabs(golden.peak);
    table.add_row({std::to_string(q), std::to_string(mor.reduced_order),
                   AsciiTable::num(mor.peak, 4), AsciiTable::num(err, 3),
                   AsciiTable::num(mor.cpu_seconds, 4),
                   AsciiTable::num(golden.cpu_seconds /
                                       std::max(mor.cpu_seconds, 1e-9), 1)});
    if (q >= 18 && err > prev_err * 3.0 + 0.05) monotone_ok = false;
    prev_err = err;
  }
  std::printf("%s\n", table.to_string().c_str());

  // Integrator ablation on the reduced model: TRAP vs BE at equal steps.
  {
    RcNetwork net = ctx.extractor.extract_parallel3(1000 * units::um);
    for (std::size_t p = 0; p < net.port_count(); ++p)
      net.stamp_port_conductance(p, p % 2 == 0 ? 1e-3 : 1e-9);
    ReducedModel model = sympvl_reduce(net);
    std::printf("parallel-3 test structure: reduced order %zu, passive: %s, "
                "min T eigenvalue %.3e\n", model.order(),
                model.is_passive() ? "yes" : "NO", model.min_t_eigenvalue());

    auto run = [&](bool trap, double dt) {
      ReducedSimulator sim(model);
      sim.set_input(0, SourceWave::dc(3.0e-3));  // victim holder Norton
      sim.set_input(2, SourceWave::pwl({{0.0, 3.0e-3}, {0.5e-9, 3.0e-3},
                                        {0.6e-9, 0.0}}));
      sim.set_input(4, SourceWave::pwl({{0.0, 3.0e-3}, {0.5e-9, 3.0e-3},
                                        {0.6e-9, 0.0}}));
      ReducedSimOptions ropt;
      ropt.tstop = 3e-9;
      ropt.dt = dt;
      ropt.trapezoidal = trap;
      return sim.run(ropt).port_voltages[1].peak_deviation();
    };
    const double ref = run(true, 0.25e-12);
    AsciiTable itable({"method", "dt", "victim peak (V)", "err vs fine %"});
    for (double dt : {1e-12, 4e-12, 16e-12}) {
      for (bool trap : {true, false}) {
        const double peak = run(trap, dt);
        itable.add_row({trap ? "TRAP" : "BE",
                        AsciiTable::num_scaled(dt, 1e-12, "ps", 0),
                        AsciiTable::num(peak, 5),
                        AsciiTable::num(100.0 * std::fabs(peak - ref) /
                                            std::fabs(ref), 3)});
      }
    }
    std::printf("\n== Reduced-integrator ablation (TRAP vs BE) ==\n%s\n",
                itable.to_string().c_str());
  }

  std::printf("ablation shape check — error collapses with order while the "
              "speed-up stays >5x: %s\n", monotone_ok ? "PASS" : "FAIL");
  return monotone_ok ? 0 : 1;
}
