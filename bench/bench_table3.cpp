// Table 3: timing-library-based (linear resistor) driver model vs
// transistor-level SPICE, rising glitch errors (Vdd = 3.0). The paper's
// point: the linear model's errors are large — "for high-confidence
// analysis, more accurate driving cell model is needed".
#include <cstdio>

#include "bench_model_accuracy.h"

using namespace xtv;

int main() {
  bench::Context ctx;
  std::vector<std::string> all_cells;
  for (std::size_t i = 0; i < ctx.library.size(); ++i)
    all_cells.push_back(ctx.library.at(i).name());
  ctx.warm_cells(all_cells);

  std::printf("== Table 3: timing-library (linear resistor) cell model vs "
              "SPICE, rising glitch (Vdd = 3.0) ==\n\n");

  const std::vector<double> lengths_um = {10,   50,   150,  400,
                                          1000, 2000, 3500, 5000};
  const bench::AccuracySweepResult result = bench::run_model_accuracy(
      ctx, DriverModelKind::kLinearResistor, lengths_um);
  bench::print_binned_errors(result);
  return result.cases.empty() ? 1 : 0;
}
