// Table 1: peak crosstalk glitch vs coupled wire length on the Figure-1
// structure (victim between two aggressors, 0.25 um rules).
//
// The paper's numeric cells were lost in the source text; the documented
// shape — glitch monotone-increasing with coupled length — is what this
// bench reproduces, with both the MOR engine and the transistor-level
// golden reference reported side by side.
#include <cstdio>

#include "bench_common.h"
#include "core/glitch_analyzer.h"
#include "util/units.h"

using namespace xtv;

int main() {
  bench::Context ctx;
  ctx.warm_cells({"INV_X2", "BUF_X4"});

  GlitchAnalyzer analyzer(ctx.extractor, ctx.chars);

  std::printf("== Table 1: coupled wire length vs peak glitch ==\n");
  std::printf("victim INV_X2 held high; aggressors BUF_X4 falling on both "
              "sides, full-length overlap at minimum spacing\n\n");

  AsciiTable table({"ckt", "length", "glitch MOR (V)", "glitch SPICE-xtor (V)",
                    "MOR order", "MOR cpu (s)", "SPICE cpu (s)"});

  const double lengths_um[] = {100, 1000, 2000, 4000};
  int idx = 0;
  double prev_peak = 0.0;
  bool monotone = true;
  for (double len_um : lengths_um) {
    ++idx;
    const double len = len_um * units::um;
    VictimSpec victim;
    victim.route = {len, 0.0};
    victim.driver_cell = "INV_X2";
    victim.held_high = true;
    victim.receiver_cap = 10e-15;

    AggressorSpec agg;
    agg.route = {len, 0.0};
    agg.driver_cell = "BUF_X4";
    agg.rising = false;  // pulls the high victim toward ground
    agg.input_slew = 0.1e-9;
    agg.receiver_cap = 10e-15;
    agg.run = {0, 0, len, 0.0, 0.0, 0.0};
    agg.window = TimingWindow::of(0.0, 2e-9);

    GlitchAnalysisOptions opt;
    opt.align_aggressors = false;
    opt.tstop = 4e-9;
    opt.dt = 2e-12;

    opt.driver_model = DriverModelKind::kNonlinearTable;
    const GlitchResult mor = analyzer.analyze(victim, {agg, agg}, opt);

    opt.driver_model = DriverModelKind::kTransistor;
    const GlitchResult gold = analyzer.analyze_spice(victim, {agg, agg}, opt);

    table.add_row({"ckt" + std::to_string(idx),
                   AsciiTable::num(len_um, 0) + " um",
                   AsciiTable::num(-mor.peak, 3),
                   AsciiTable::num(-gold.peak, 3),
                   std::to_string(mor.reduced_order),
                   AsciiTable::num(mor.cpu_seconds, 3),
                   AsciiTable::num(gold.cpu_seconds, 3)});
    if (-mor.peak < prev_peak) monotone = false;
    prev_peak = -mor.peak;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper shape check — glitch increases with coupled length: %s\n",
              monotone ? "PASS" : "FAIL");
  return monotone ? 0 : 1;
}
