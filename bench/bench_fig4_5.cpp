// Figures 4 and 5: full crosstalk waveform comparison between MPVL and
// SPICE for the Figure-3 case with the largest percentage error, plus a
// magnified view around the peak showing the peaks differ "by a small and
// practically negligible value".
//
// Waveforms are printed as TSV blocks (time, v_spice, v_mpvl) suitable for
// any plotting tool; the magnified view covers +/-0.25 ns around the peak.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/verifier.h"

using namespace xtv;

int main() {
  bench::Context ctx;
  DspChipOptions chip_opt;
  chip_opt.net_count = 1500;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_opt);
  {
    std::vector<std::string> cells;
    for (const auto& net : design.nets) cells.push_back(net.driver_cell);
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    ctx.warm_cells(cells);
  }
  const auto summaries = chip_net_summaries(design, ctx.extractor, ctx.chars);
  const PruneResult pruned = prune_couplings(summaries, {});

  ChipVerifier verifier(ctx.extractor, ctx.chars);
  GlitchAnalyzer analyzer(ctx.extractor, ctx.chars);

  GlitchAnalysisOptions opt;
  opt.driver_model = DriverModelKind::kFixedResistor;
  opt.fixed_resistance = 1e3;
  opt.align_aggressors = false;
  opt.tstop = 3e-9;
  opt.dt = 4e-12;

  // Find the worst-error case among the Fig-3 population.
  double worst_err = -1.0;
  Waveform worst_spice, worst_mor;
  std::size_t worst_net = 0;
  std::size_t analyzed = 0;
  for (std::size_t v = 0; v < design.nets.size() && analyzed < 113; ++v) {
    if (pruned.retained[v].size() < 2) continue;
    auto [victim, aggressors] =
        verifier.build_victim_cluster(design, summaries, pruned, v);
    if (aggressors.size() < 2) continue;
    if (aggressors.size() > 12) aggressors.resize(12);
    opt.mor.max_order = 2 * (1 + aggressors.size());

    const GlitchResult mor = analyzer.analyze(victim, aggressors, opt);
    const GlitchResult spice = analyzer.analyze_spice(victim, aggressors, opt);
    if (std::fabs(spice.peak) < 0.02) continue;
    ++analyzed;
    const double err =
        std::fabs(std::fabs(spice.peak) - std::fabs(mor.peak)) /
        std::fabs(spice.peak);
    if (err > worst_err) {
      worst_err = err;
      worst_spice = spice.victim_wave;
      worst_mor = mor.victim_wave;
      worst_net = v;
    }
  }

  std::printf("== Figures 4/5: worst-error case (net %zu, |peak err| %.2f%%) ==\n",
              worst_net, 100.0 * worst_err);

  // Figure 4: the full waveform.
  std::printf("\n-- Figure 4: full crosstalk waveform (t[s], v_spice, v_mpvl) --\n");
  const int kRows = 60;
  for (int i = 0; i <= kRows; ++i) {
    const double t = opt.tstop * i / kRows;
    std::printf("%.4e\t%+.5f\t%+.5f\n", t, worst_spice.at(t), worst_mor.at(t));
  }

  // Figure 5: magnified view around the SPICE peak.
  double t_peak = 0.0, best = 0.0;
  for (std::size_t i = 0; i < worst_spice.size(); ++i) {
    const double dev = std::fabs(worst_spice.value(i) - worst_spice.first_value());
    if (dev > best) {
      best = dev;
      t_peak = worst_spice.time(i);
    }
  }
  std::printf("\n-- Figure 5: magnified peak, t_peak = %.3f ns --\n", t_peak * 1e9);
  for (int i = -20; i <= 20; ++i) {
    const double t =
        std::clamp(t_peak + i * 12.5e-12, 0.0, opt.tstop);
    std::printf("%.4e\t%+.5f\t%+.5f\n", t, worst_spice.at(t), worst_mor.at(t));
  }

  const double peak_gap =
      std::fabs(worst_spice.peak_deviation() - worst_mor.peak_deviation());
  std::printf("\npeak difference at worst case: %.4f V\n", peak_gap);
  const bool pass = worst_err >= 0.0 && peak_gap < 0.05;
  std::printf("paper shape check — peaks differ by a small, practically "
              "negligible value: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
