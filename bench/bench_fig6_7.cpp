// Figures 6 and 7: crosstalk-peak accuracy of the full methodology —
// MPVL + non-linear cell models — against transistor-level SPICE, on 101
// potential victims chosen among the latch inputs of the DSP design.
//
// Paper results (for peaks > 10% of Vdd, histogrammed; bounds quoted for
// peaks > 20% of Vdd): rising errors -6.9%..+7.2%, falling errors
// -6.1%..+10.5%; tighter bounds for larger peaks; ~25x CPU improvement.
// A negative error means SPICE is more pessimistic.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "util/stats.h"

using namespace xtv;

int main() {
  bench::Context ctx;
  DspChipOptions chip_opt;
  chip_opt.net_count = 1500;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_opt);
  {
    std::vector<std::string> cells;
    for (const auto& net : design.nets) cells.push_back(net.driver_cell);
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    ctx.warm_cells(cells);
  }
  const auto summaries = chip_net_summaries(design, ctx.extractor, ctx.chars);
  const PruneResult pruned = prune_couplings(summaries, {});

  ChipVerifier verifier(ctx.extractor, ctx.chars);
  GlitchAnalyzer analyzer(ctx.extractor, ctx.chars);
  const double vdd = ctx.tech.vdd;

  GlitchAnalysisOptions opt;
  opt.align_aggressors = false;
  opt.tstop = 3e-9;
  opt.dt = 4e-12;

  struct DirectionStats {
    Histogram hist{-15.0, 15.0, 12};
    SummaryStats err_all;      // peaks > 10% Vdd
    SummaryStats err_large;    // peaks > 20% Vdd
  };
  DirectionStats rising, falling;
  double mor_cpu = 0.0, spice_cpu = 0.0;
  std::size_t victims = 0;

  for (std::size_t v = 0; v < design.nets.size() && victims < 101; ++v) {
    if (!design.nets[v].latch_input) continue;
    if (pruned.retained[v].empty()) continue;
    auto [victim, aggressors] =
        verifier.build_victim_cluster(design, summaries, pruned, v);
    if (aggressors.empty()) continue;
    if (aggressors.size() > 6) aggressors.resize(6);
    ++victims;

    // The design windows have served their purpose (correlation/overlap
    // filtering in build_victim_cluster); for the accuracy measurement all
    // aggressors fire inside the simulated span so both engines resolve
    // the full peak.
    for (auto& agg : aggressors) agg.window = TimingWindow::of(0.4e-9, 0.6e-9);

    // Rising crosstalk: victim held low, aggressors rise; falling: mirror.
    for (bool rising_peak : {true, false}) {
      victim.held_high = !rising_peak;
      for (auto& agg : aggressors) agg.rising = rising_peak;

      opt.driver_model = DriverModelKind::kNonlinearTable;
      const GlitchResult mor = analyzer.analyze(victim, aggressors, opt);
      opt.driver_model = DriverModelKind::kTransistor;
      const GlitchResult gold = analyzer.analyze_spice(victim, aggressors, opt);
      mor_cpu += mor.cpu_seconds;
      spice_cpu += gold.cpu_seconds;

      const double peak_frac = std::fabs(gold.peak) / vdd;
      if (peak_frac < 0.10) continue;  // the figures only histogram >10% Vdd
      // Negative = SPICE more pessimistic (bigger golden peak).
      const double err = 100.0 * (std::fabs(mor.peak) - std::fabs(gold.peak)) /
                         std::fabs(gold.peak);
      DirectionStats& stats = rising_peak ? rising : falling;
      stats.hist.add(err);
      stats.err_all.add(err);
      if (peak_frac > 0.20) stats.err_large.add(err);
    }
  }

  std::printf("== Figures 6/7: non-linear cell model + MPVL vs transistor-"
              "level SPICE, %zu latch-input victims ==\n", victims);
  std::printf("\n-- Figure 6: RISING crosstalk peak error (peaks > 10%% Vdd) --\n");
  std::printf("%s", rising.hist.to_ascii(40, 1).c_str());
  std::printf("all>10%%: %s\n", rising.err_all.to_string(2).c_str());
  std::printf(">20%% Vdd bounds: [%.2f%%, %.2f%%] (n=%zu)\n",
              rising.err_large.min(), rising.err_large.max(),
              rising.err_large.count());
  std::printf("\n-- Figure 7: FALLING crosstalk peak error (peaks > 10%% Vdd) --\n");
  std::printf("%s", falling.hist.to_ascii(40, 1).c_str());
  std::printf("all>10%%: %s\n", falling.err_all.to_string(2).c_str());
  std::printf(">20%% Vdd bounds: [%.2f%%, %.2f%%] (n=%zu)\n",
              falling.err_large.min(), falling.err_large.max(),
              falling.err_large.count());

  std::printf("\ncpu: SPICE %.1f s, MPVL+nonlinear model %.1f s -> "
              "speed-up %.1fx\n", spice_cpu, mor_cpu,
              spice_cpu / std::max(mor_cpu, 1e-12));

  // Shape criteria from the paper: a large victim population, small mean
  // error, and bounds for the >20%-of-Vdd peaks no looser than the whole
  // >10% population (the "tighter bounds are expected for larger values"
  // property). Absolute tail width depends on the aggressor cell mix; see
  // EXPERIMENTS.md for the measured-vs-paper discussion.
  auto width = [](const SummaryStats& s) {
    return std::max(std::fabs(s.min()), std::fabs(s.max()));
  };
  const bool pass = victims >= 90 && rising.err_large.count() > 0 &&
                    falling.err_large.count() > 0 &&
                    std::fabs(rising.err_all.mean()) < 15.0 &&
                    std::fabs(falling.err_all.mean()) < 15.0 &&
                    width(rising.err_large) <= width(rising.err_all) + 1e-9 &&
                    width(falling.err_large) <= width(falling.err_all) + 1e-9;
  std::printf("paper shape check — small mean error; >20%%-Vdd bounds no "
              "looser than the >10%% population: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
