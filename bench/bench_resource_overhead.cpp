// Resource-governance overhead microbenchmark (DESIGN.md §9): the memory
// accounting arena adds two relaxed atomic RMWs per tracked allocation —
// this bench measures what that costs on the hot DenseMatrix churn path
// (no scope vs. account-only scope vs. enforced generous budget) and on an
// end-to-end verify() of a small chip. The claim under test: governance is
// free when off and well under the noise floor of one cluster analysis
// when on.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/verifier.h"
#include "linalg/dense_matrix.h"
#include "util/resource.h"

using namespace xtv;

namespace {

/// Allocates/destroys `iters` matrices of `n` x `n`, returning seconds.
/// The sum defeats dead-code elimination.
double churn(std::size_t iters, std::size_t n, double& sink) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    DenseMatrix m(n, n);
    m(0, 0) = static_cast<double>(i);
    sink += m(0, 0);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("== Resource-governance overhead ==\n\n");

  const std::size_t kIters = 20000;
  const std::size_t kN = 64;
  double sink = 0.0;

  // Warm the allocator so the first variant is not paying page faults.
  churn(kIters / 4, kN, sink);

  const double no_scope = churn(kIters, kN, sink);
  double account_only = 0.0;
  {
    resource::ClusterScope scope;
    account_only = churn(kIters, kN, sink);
  }
  double enforced = 0.0;
  {
    resource::ClusterScope scope(std::size_t{1} << 30);  // 1 GiB: never hit
    enforced = churn(kIters, kN, sink);
  }

  std::printf("DenseMatrix churn (%zu x %zu, %zu allocations):\n", kN, kN,
              kIters);
  std::printf("  no scope       : %8.3f ms (%.1f ns/alloc)\n", no_scope * 1e3,
              no_scope * 1e9 / kIters);
  std::printf("  account only   : %8.3f ms (%.1f ns/alloc, %+.1f%%)\n",
              account_only * 1e3, account_only * 1e9 / kIters,
              100.0 * (account_only - no_scope) / no_scope);
  std::printf("  enforced budget: %8.3f ms (%.1f ns/alloc, %+.1f%%)\n",
              enforced * 1e3, enforced * 1e9 / kIters,
              100.0 * (enforced - no_scope) / no_scope);

  // End to end: a small audit with governance off vs. generously on.
  bench::Context ctx;
  DspChipOptions chip_opt;
  chip_opt.net_count = 120;
  chip_opt.tracks = 8;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_opt);
  ChipVerifier verifier(ctx.extractor, ctx.chars);

  VerifierOptions off;
  off.glitch.align_aggressors = false;
  off.glitch.tstop = 3e-9;
  VerifierOptions on = off;
  on.cluster_mem_mb = 1024.0;
  on.global_mem_soft_mb = 64.0 * 1024.0;

  const VerificationReport warm = verifier.verify(design, off);
  const VerificationReport r_off = verifier.verify(design, off);
  const VerificationReport r_on = verifier.verify(design, on);
  (void)warm;

  std::printf("\nverify() on %zu nets (%zu eligible victims):\n",
              design.nets.size(), r_off.victims_eligible);
  std::printf("  governance off : %8.3f s\n", r_off.wall_seconds);
  std::printf("  governance on  : %8.3f s (%+.1f%%, watchdog + budgets)\n",
              r_on.wall_seconds,
              100.0 * (r_on.wall_seconds - r_off.wall_seconds) /
                  r_off.wall_seconds);
  std::printf("\n(sink %.1f to keep the optimizer honest)\n", sink);
  return 0;
}
