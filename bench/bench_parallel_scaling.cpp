// Parallel scaling of the chip-level sweep: the same design verified with
// 1, 2, 4, and 8 worker threads. Reports wall time, summed per-victim CPU
// time (which should stay ~constant — the work doesn't change, only its
// distribution), realized speedup, and parallel efficiency, and asserts
// that every thread count reproduces the serial findings bit-for-bit.
//
// Build & run:  ./build/bench/bench_parallel_scaling [net_count]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "chipgen/dsp_chip.h"
#include "core/verifier.h"

using namespace xtv;

namespace {

bool findings_match(const VerificationReport& a, const VerificationReport& b) {
  if (a.findings.size() != b.findings.size()) return false;
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    const VictimFinding& x = a.findings[i];
    const VictimFinding& y = b.findings[i];
    if (x.net != y.net || x.peak != y.peak || x.status != y.status ||
        x.violation != y.violation || x.reduced_order != y.reduced_order)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Context ctx;

  DspChipOptions chip_options;
  chip_options.net_count =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 240;
  const ChipDesign design = generate_dsp_chip(ctx.library, chip_options);

  VerifierOptions options;
  options.glitch_threshold = 0.10;
  options.glitch.align_aggressors = false;  // keep per-victim cost moderate
  options.glitch.tstop = 3e-9;

  ChipVerifier verifier(ctx.extractor, ctx.chars);

  std::printf("parallel scaling, %zu-net design\n", chip_options.net_count);
  std::printf("%8s %10s %10s %9s %11s %s\n", "threads", "wall (s)", "cpu (s)",
              "speedup", "efficiency", "identical");

  VerificationReport serial;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    options.threads = threads;
    const VerificationReport report = verifier.verify(design, options);
    if (threads == 1) serial = report;
    const double speedup = serial.wall_seconds / report.wall_seconds;
    std::printf("%8zu %10.2f %10.2f %8.2fx %10.0f%% %s\n", threads,
                report.wall_seconds, report.total_cpu_seconds, speedup,
                100.0 * speedup / static_cast<double>(threads),
                findings_match(serial, report) ? "yes" : "NO  <-- BUG");
  }

  ctx.chars.save(bench::kCellCachePath);
  return 0;
}
